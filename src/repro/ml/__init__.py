"""Benchmark machine-learning classifiers, implemented from scratch.

The paper's refined-DA phase uses "benchmark machine learning techniques" —
specifically KNN and SMO-trained SVMs, with SVM/NN/RLSC named as candidates.
scikit-learn is not available in the offline environment, so this subpackage
provides NumPy implementations with a minimal fit/predict interface.
"""

from repro.ml.base import Classifier, check_fitted
from repro.ml.knn import KNNClassifier
from repro.ml.metrics import accuracy_score, confusion_counts
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.nearest_centroid import NearestCentroidClassifier
from repro.ml.preprocessing import StandardScaler
from repro.ml.rlsc import RLSCClassifier
from repro.ml.svm_smo import SMOBinarySVM, SMOClassifier

__all__ = [
    "Classifier",
    "KNNClassifier",
    "NearestCentroidClassifier",
    "OneVsRestClassifier",
    "RLSCClassifier",
    "SMOBinarySVM",
    "SMOClassifier",
    "StandardScaler",
    "accuracy_score",
    "check_fitted",
    "confusion_counts",
]
