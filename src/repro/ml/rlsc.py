"""Regularized Least Squares Classification (RLSC).

One of the benchmark techniques the paper names for refined DA ([31] uses
RLSC at Internet scale).  One-hot ridge regression solved in whichever space
is smaller (primal d×d or dual n×n), predicting the argmax output.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.ml.base import check_fitted, validate_xy


class RLSCClassifier:
    """Ridge-regression one-vs-all classifier with closed-form training."""

    def __init__(self, reg: float = 1.0) -> None:
        if reg <= 0:
            raise ConfigError(f"reg must be positive, got {reg}")
        self.reg = reg
        self.classes_: "np.ndarray | None" = None
        self._W: "np.ndarray | None" = None  # (d, n_classes) primal weights
        self._dual: bool = False
        self._Xtrain: "np.ndarray | None" = None
        self._A: "np.ndarray | None" = None  # (n, n_classes) dual coefs

    def clone(self) -> "RLSCClassifier":
        return RLSCClassifier(reg=self.reg)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RLSCClassifier":
        X, y = validate_xy(X, y)
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        n, d = X.shape
        Y = -np.ones((n, len(self.classes_)))
        Y[np.arange(n), y_idx] = 1.0
        if d <= n:
            self._dual = False
            G = X.T @ X + self.reg * np.eye(d)
            self._W = np.linalg.solve(G, X.T @ Y)
        else:
            self._dual = True
            K = X @ X.T + self.reg * np.eye(n)
            self._A = np.linalg.solve(K, Y)
            self._Xtrain = X
        return self

    def predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "classes_")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self._dual:
            return (X @ self._Xtrain.T) @ self._A
        return X @ self._W

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.predict_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]
