"""Support vector machine trained by Sequential Minimal Optimization.

The paper's strongest refined-DA classifier is "SMO" — Platt's SMO-trained
SVM (as shipped by Weka and used in [32]).  :class:`SMOBinarySVM` is a
simplified-SMO binary soft-margin SVM with linear or RBF kernel;
:class:`SMOClassifier` lifts it to multiclass via one-vs-rest.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.ml.base import check_fitted, validate_xy
from repro.ml.multiclass import OneVsRestClassifier


def _linear_kernel(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return A @ B.T


def _rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    sq = (
        np.sum(A * A, axis=1)[:, None]
        + np.sum(B * B, axis=1)[None, :]
        - 2.0 * (A @ B.T)
    )
    return np.exp(-gamma * np.maximum(sq, 0.0))


class SMOBinarySVM:
    """Binary soft-margin SVM trained with simplified SMO.

    Labels must be +1 / -1.  Training follows the simplified SMO loop:
    sweep examples, pick KKT violators, pair them with a random second
    multiplier, and solve the two-variable subproblem analytically.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "linear",
        gamma: float = 0.1,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 10_000,
        seed: int = 0,
    ) -> None:
        if C <= 0:
            raise ConfigError(f"C must be positive, got {C}")
        if kernel not in ("linear", "rbf"):
            raise ConfigError(f"unknown kernel {kernel!r}")
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self.alpha_: "np.ndarray | None" = None
        self.b_: float = 0.0
        self._X: "np.ndarray | None" = None
        self._y: "np.ndarray | None" = None

    def clone(self) -> "SMOBinarySVM":
        return SMOBinarySVM(
            C=self.C,
            kernel=self.kernel,
            gamma=self.gamma,
            tol=self.tol,
            max_passes=self.max_passes,
            max_iter=self.max_iter,
            seed=self.seed,
        )

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return _linear_kernel(A, B)
        return _rbf_kernel(A, B, self.gamma)

    def fit(
        self, X: np.ndarray, y: np.ndarray, gram: "np.ndarray | None" = None
    ) -> "SMOBinarySVM":
        """Train; ``gram`` lets callers share one precomputed kernel matrix
        across several binary problems (the one-vs-rest path does this)."""
        X, y = validate_xy(X, y)
        y = np.asarray(y, dtype=float)
        labels = set(np.unique(y).tolist())
        if not labels <= {-1.0, 1.0}:
            raise ConfigError(f"binary SVM labels must be ±1, got {sorted(labels)}")
        n = len(X)
        rng = np.random.default_rng(self.seed)
        K = gram if gram is not None else self._kernel_matrix(X, X)
        if K.shape != (n, n):
            raise ConfigError(f"gram matrix shape {K.shape} does not match n={n}")
        alpha = np.zeros(n)
        b = 0.0
        # error cache: E[i] = f(x_i) - y_i, maintained incrementally so the
        # inner loop never recomputes kernel expansions
        E = -y.copy()

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                iters += 1
                Ei = E[i]
                if (y[i] * Ei < -self.tol and alpha[i] < self.C) or (
                    y[i] * Ei > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    Ej = E[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, aj_old - ai_old)
                        high = min(self.C, self.C + aj_old - ai_old)
                    else:
                        low = max(0.0, ai_old + aj_old - self.C)
                        high = min(self.C, ai_old + aj_old)
                    if low >= high:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    aj = aj_old - y[j] * (Ei - Ej) / eta
                    aj = float(np.clip(aj, low, high))
                    if abs(aj - aj_old) < 1e-5:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    dai = ai - ai_old
                    daj = aj - aj_old
                    b1 = b - Ei - y[i] * dai * K[i, i] - y[j] * daj * K[i, j]
                    b2 = b - Ej - y[i] * dai * K[i, j] - y[j] * daj * K[j, j]
                    if 0 < ai < self.C:
                        b_new = b1
                    elif 0 < aj < self.C:
                        b_new = b2
                    else:
                        b_new = (b1 + b2) / 2.0
                    E += y[i] * dai * K[:, i] + y[j] * daj * K[:, j] + (b_new - b)
                    b = b_new
                    changed += 1
            passes = passes + 1 if changed == 0 else 0

        self.alpha_ = alpha
        self.b_ = b
        # keep only support vectors for prediction
        sv = alpha > 1e-8
        self._X = X[sv]
        self._y = y[sv]
        self.alpha_ = alpha[sv]
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "alpha_")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if len(self._X) == 0:
            return np.full(len(X), self.b_)
        K = self._kernel_matrix(X, self._X)
        return K @ (self.alpha_ * self._y) + self.b_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0.0, 1.0, -1.0)


class SMOClassifier(OneVsRestClassifier):
    """Multiclass SMO-SVM (one-vs-rest over :class:`SMOBinarySVM`).

    The kernel matrix is computed once and shared across all one-vs-rest
    binary problems — with stylometric feature widths (M ≈ 2100) the Gram
    computation dominates training time otherwise.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "linear",
        gamma: float = 0.1,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 10_000,
        seed: int = 0,
    ) -> None:
        super().__init__(
            base=SMOBinarySVM(
                C=C,
                kernel=kernel,
                gamma=gamma,
                tol=tol,
                max_passes=max_passes,
                max_iter=max_iter,
                seed=seed,
            )
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SMOClassifier":
        X, y = validate_xy(X, y)
        self.classes_ = np.unique(y)
        self._estimators = []
        if len(self.classes_) < 2:
            return self
        gram = self.base._kernel_matrix(X, X)
        for cls in self.classes_:
            target = np.where(y == cls, 1.0, -1.0)
            est = self.base.clone()
            est.fit(X, target, gram=gram)
            self._estimators.append(est)
        return self
