"""One-vs-rest reduction from binary ±1 classifiers to multiclass."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fitted, validate_xy


class OneVsRestClassifier:
    """Trains one binary classifier per class; predicts the argmax margin.

    The base estimator must expose ``fit(X, y±1)``, ``decision_function(X)``,
    and ``clone()``.
    """

    def __init__(self, base) -> None:
        self.base = base
        self.classes_: "np.ndarray | None" = None
        self._estimators: "list | None" = None

    def clone(self) -> "OneVsRestClassifier":
        return OneVsRestClassifier(base=self.base.clone())

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsRestClassifier":
        X, y = validate_xy(X, y)
        self.classes_ = np.unique(y)
        self._estimators = []
        if len(self.classes_) < 2:
            # degenerate single-class problem: predict it always
            return self
        for cls in self.classes_:
            target = np.where(y == cls, 1.0, -1.0)
            est = self.base.clone()
            est.fit(X, target)
            self._estimators.append(est)
        return self

    def predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "classes_")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if not self._estimators:
            return np.ones((len(X), 1))
        margins = np.column_stack(
            [est.decision_function(X) for est in self._estimators]
        )
        return margins

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.predict_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]
