"""Feature scaling."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fitted


class StandardScaler:
    """Zero-mean / unit-variance scaling with constant-feature guard.

    Features with zero variance are left centred but unscaled (divisor 1),
    which keeps the stylometric vectors — most slots are zero for most
    posts — numerically stable.
    """

    def __init__(self) -> None:
        self.mean_: "np.ndarray | None" = None
        self.scale_: "np.ndarray | None" = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "mean_")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
