"""k-nearest-neighbour classifier (the paper's KNN baseline, after [31])."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.ml.base import check_fitted, validate_xy


class KNNClassifier:
    """Vectorised KNN with euclidean or cosine distance.

    ``predict_scores`` returns per-class (inverse-distance-weighted) vote
    shares so downstream verification schemes can threshold on confidence.
    """

    def __init__(self, k: int = 3, metric: str = "cosine") -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if metric not in ("euclidean", "cosine"):
            raise ConfigError(f"unknown metric {metric!r}")
        self.k = k
        self.metric = metric
        self._X: "np.ndarray | None" = None
        self._y_idx: "np.ndarray | None" = None
        self.classes_: "np.ndarray | None" = None

    def clone(self) -> "KNNClassifier":
        return KNNClassifier(k=self.k, metric=self.metric)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        X, y = validate_xy(X, y)
        self.classes_, self._y_idx = np.unique(y, return_inverse=True)
        self._X = X
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b
            sq = (
                np.sum(X * X, axis=1)[:, None]
                + np.sum(self._X * self._X, axis=1)[None, :]
                - 2.0 * (X @ self._X.T)
            )
            return np.sqrt(np.maximum(sq, 0.0))
        # cosine distance
        xn = np.linalg.norm(X, axis=1, keepdims=True)
        tn = np.linalg.norm(self._X, axis=1, keepdims=True)
        xn[xn == 0.0] = 1.0
        tn[tn == 0.0] = 1.0
        sim = (X / xn) @ (self._X / tn).T
        return 1.0 - sim

    def predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "_X")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        dist = self._distances(X)
        k = min(self.k, dist.shape[1])
        nn = np.argpartition(dist, k - 1, axis=1)[:, :k]
        scores = np.zeros((len(X), len(self.classes_)))
        for i in range(len(X)):
            for j in nn[i]:
                weight = 1.0 / (1.0 + dist[i, j])
                scores[i, self._y_idx[j]] += weight
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.predict_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]
