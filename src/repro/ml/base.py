"""Shared classifier interface."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import NotFittedError


@runtime_checkable
class Classifier(Protocol):
    """Minimal fit/predict protocol all repro classifiers satisfy."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...

    def predict_scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class scores, shape (n_samples, n_classes)."""
        ...

    def clone(self) -> "Classifier":
        """Unfitted copy with the same hyperparameters."""
        ...


def check_fitted(estimator, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` is set and non-None."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before prediction"
        )


def validate_xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Coerce and sanity-check a training pair."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)} labels")
    if len(X) == 0:
        raise ValueError("cannot fit on an empty training set")
    return X, y
