"""Shared utilities: deterministic RNG management and small statistics helpers."""

from repro.utils.rng import derive_rng, seed_from_label, spawn_rngs
from repro.utils.stats import (
    cosine_similarity,
    empirical_cdf,
    jaccard,
    minmax_ratio,
    pad_to_same_length,
    truncated_zipf_pmf,
    weighted_jaccard,
)

__all__ = [
    "cosine_similarity",
    "derive_rng",
    "empirical_cdf",
    "jaccard",
    "minmax_ratio",
    "pad_to_same_length",
    "seed_from_label",
    "spawn_rngs",
    "truncated_zipf_pmf",
    "weighted_jaccard",
]
