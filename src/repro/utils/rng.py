"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
``numpy.random.Generator``.  These helpers centralise the conversion so that
(i) a single experiment seed reproduces the whole pipeline and (ii) distinct
components derive *independent* streams instead of sharing one generator whose
consumption order would couple unrelated modules.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngLike = "int | np.random.Generator | None"


def derive_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a ``Generator`` for ``seed``.

    ``None`` yields a fresh non-deterministic generator, an ``int`` a seeded
    one, and an existing ``Generator`` is passed through untouched (so callers
    can thread one stream through a pipeline when they want coupling).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_from_label(base_seed: int, label: str) -> int:
    """Derive a stable child seed from ``base_seed`` and a string ``label``.

    Uses BLAKE2 rather than ``hash()`` because the latter is salted per
    process and would break reproducibility across runs.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def spawn_rngs(seed: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.Generator):
        # Generator exposes ``spawn`` from NumPy 1.25 onward.
        return list(seed.spawn(n))
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
