"""Worker-count resolution shared by the sweep executor and the extractor.

One definition of "how many cores do we actually have" so the two
process-pool knobs (``Engine.sweep(parallel=...)`` and
``extract_workers``) can never silently diverge in their ``None``/``0``
semantics.
"""

from __future__ import annotations

import os


def available_workers() -> int:
    """Cores the scheduler actually grants this process.

    ``os.sched_getaffinity`` semantics (cgroup/affinity aware), with the
    portable ``os.cpu_count`` fallback off Linux.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux fallback
        return os.cpu_count() or 1


def clamp_workers(workers: "int | None", cap: int) -> int:
    """Clamp a worker-count request to ``[1, cap]``.

    ``None`` or 0 means "one worker per available core".  Raises
    ``TypeError``/``ValueError`` on non-integer input; callers wrap those
    in their own error types.
    """
    if workers is None or workers == 0:
        workers = available_workers()
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return max(1, min(workers, cap))
