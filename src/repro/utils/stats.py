"""Small numeric helpers used across the library.

These are deliberately dependency-light: similarity primitives used by the
Top-K phase (cosine / Jaccard / min-max ratio), empirical-CDF evaluation used
by the figure experiments, and a truncated Zipf pmf used by the corpus
generator to reproduce the heavy-tailed posts-per-user distribution.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np


def minmax_ratio(a: float, b: float) -> float:
    """``min(a,b)/max(a,b)`` with the degenerate cases pinned down.

    The paper's degree similarity uses this ratio but never defines it for
    isolated users.  We define ``0/0 = 1.0`` (two users with identical —
    empty — interactivity are maximally similar on this component) and
    one-sided zero as ``0.0``.
    """
    if a < 0 or b < 0:
        raise ValueError(f"minmax_ratio expects non-negative inputs, got {a}, {b}")
    if a == 0.0 and b == 0.0:
        return 1.0
    return min(a, b) / max(a, b)


def cosine_similarity(u: Sequence[float], v: Sequence[float]) -> float:
    """Cosine similarity with zero-vector guard (zero vs zero ⇒ 1.0)."""
    ua = np.asarray(u, dtype=float)
    va = np.asarray(v, dtype=float)
    if ua.ndim != 1 or va.ndim != 1:
        raise ValueError("cosine_similarity expects 1-D vectors")
    ua, va = pad_to_same_length(ua, va)
    nu = float(np.linalg.norm(ua))
    nv = float(np.linalg.norm(va))
    if nu == 0.0 and nv == 0.0:
        return 1.0
    if nu == 0.0 or nv == 0.0:
        return 0.0
    return float(np.dot(ua, va) / (nu * nv))


def pad_to_same_length(u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pad the shorter of two 1-D arrays (the paper's NCS-vector rule)."""
    if len(u) == len(v):
        return u, v
    size = max(len(u), len(v))
    return (
        np.pad(u, (0, size - len(u))),
        np.pad(v, (0, size - len(v))),
    )


def jaccard(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity |A∩B| / |A∪B|; empty-vs-empty defined as 1.0."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


def weighted_jaccard(wa: Mapping, wb: Mapping) -> float:
    """Weighted Jaccard: Σ min(w_a, w_b) / Σ max(w_a, w_b) over the key union.

    Matches the paper's ``|WA(u) ∩ WA(v)| / |WA(u) ∪ WA(v)|`` with
    ``l_{u∩v} = min`` and ``l_{u∪v} = max``; a key missing from one side
    contributes weight 0 there.
    """
    if not wa and not wb:
        return 1.0
    keys = set(wa) | set(wb)
    num = 0.0
    den = 0.0
    for k in keys:
        x = float(wa.get(k, 0.0))
        y = float(wb.get(k, 0.0))
        if x < 0 or y < 0:
            raise ValueError(f"weighted_jaccard expects non-negative weights (key {k!r})")
        num += min(x, y)
        den += max(x, y)
    if den == 0.0:
        return 1.0
    return num / den


def empirical_cdf(samples: Sequence[float], points: Sequence[float]) -> np.ndarray:
    """Evaluate the empirical CDF of ``samples`` at each of ``points``.

    Returns ``P(X <= p)`` for each ``p``; an empty sample set yields zeros
    (there is nothing at or below any threshold).
    """
    xs = np.sort(np.asarray(samples, dtype=float))
    pts = np.asarray(points, dtype=float)
    if xs.size == 0:
        return np.zeros_like(pts)
    idx = np.searchsorted(xs, pts, side="right")
    return idx / xs.size


def truncated_zipf_pmf(n_max: int, exponent: float) -> np.ndarray:
    """Probability mass function of a Zipf law on ``{1, ..., n_max}``.

    Used by the corpus generator for posts-per-user: the paper reports that
    87.3% of WebMD users (75.4% of HealthBoards users) wrote fewer than 5
    posts, which a truncated power law reproduces with exponent ≈ 2.
    """
    if n_max < 1:
        raise ValueError(f"n_max must be >= 1, got {n_max}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    ks = np.arange(1, n_max + 1, dtype=float)
    weights = ks ** (-exponent)
    return weights / weights.sum()
