"""Parallel sharded sweep executor over the attack engine.

A sweep is an attack *matrix*: many :class:`~repro.api.AttackRequest`
variants, usually spanning several Δ1/Δ2 splits.  The expensive unit of
work is the per-split fit (feature extraction + similarity), so the
executor shards the matrix by split: requests are grouped by ``(corpus
fingerprint, split_key)``, each shard is served by exactly one
:class:`~repro.api.AttackSession` (one fit per shard), and shards execute
concurrently across worker processes.

Determinism guarantee
---------------------
Merged reports come back in the exact order of the input requests,
independent of worker completion order, and every report field except the
two volatile ones — ``elapsed_ms`` (wall clock) and ``reused_fit`` (a
scheduling detail) — is bit-identical between serial and parallel
execution: each report is a pure function of (corpus, split spec, attack
knobs).  :func:`canonical_report_json` serializes reports with the volatile
fields dropped, so regression suites can assert byte-identity between
serial runs, parallel runs, and checked-in goldens.

Only the standard library is used for orchestration
(:mod:`concurrent.futures`); worker processes rebuild their shard's
session from the pickled dataset, so no state is shared between shards.

Backend choice: the ``process`` backend uses the platform's default
multiprocessing start method (fork on Linux) — use it from
single-threaded parents (the CLI, experiment scripts).  Multi-threaded
parents (the threading WSGI server) must use the ``thread`` backend
instead: forking a process whose other threads hold locks can deadlock
the children, and the engine/session locks make threads safe anyway.
"""

from __future__ import annotations

import itertools
import json
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, ThreadPoolExecutor, wait

from repro.api.protocol import DEFAULT_TENANT, AttackReport, AttackRequest
from repro.api.session import AttackSession
from repro.errors import ConfigError
from repro.utils.workers import available_workers

#: Executor backends ``SweepExecutor`` accepts.  ``process`` gives true
#: multi-core parallelism (one fitted session per worker process);
#: ``thread`` shares the engine's session cache under its lock (useful when
#: the shards' numpy kernels release the GIL); ``serial`` runs in-process.
BACKEND_CHOICES: tuple = ("process", "thread", "serial")

#: Hard ceiling on worker count, whatever the caller asks for.
MAX_WORKERS = 32


def resolve_workers(workers: "int | None") -> int:
    """Clamp a worker-count request to ``[1, MAX_WORKERS]``.

    ``None`` or 0 means "use every core the scheduler gives us"
    (:func:`repro.utils.workers.available_workers`).
    """
    if workers is None or workers == 0:
        workers = available_workers()
    try:
        workers = int(workers)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"workers must be an integer, got {workers!r}") from exc
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    return max(1, min(workers, MAX_WORKERS))


# --- matrix specs -------------------------------------------------------


def expand_grid(base: dict, grid: dict, max_requests: "int | None" = None) -> list:
    """Cartesian-product expansion of ``grid`` values over a ``base`` request.

    ``expand_grid({"corpus": "c"}, {"top_k": [5, 10], "classifier": ["knn",
    "smo"]})`` yields four requests, ordered with the *last* (alphabetically)
    grid key varying fastest.  Keys are validated by
    :meth:`AttackRequest.from_dict`, so typos fail with :class:`ConfigError`.
    """
    if not isinstance(base, dict):
        raise ConfigError(
            f"sweep base must be a JSON object, got {type(base).__name__}"
        )
    if not isinstance(grid, dict) or not grid:
        raise ConfigError("sweep grid must be a non-empty JSON object")
    names = sorted(grid)
    value_lists = []
    size = 1
    for name in names:
        values = grid[name]
        if not isinstance(values, (list, tuple)) or not len(values):
            raise ConfigError(f"grid value for {name!r} must be a non-empty list")
        value_lists.append(list(values))
        size *= len(values)
        # reject oversized grids before materializing the product — one
        # spec must not be able to wedge the worker pool
        if max_requests is not None and size > max_requests:
            raise ConfigError(
                f"sweep grid expands to {size}+ requests, exceeding the cap "
                f"of {max_requests}"
            )
    requests = []
    for combo in itertools.product(*value_lists):
        payload = dict(base)
        payload.update(dict(zip(names, combo)))
        requests.append(AttackRequest.from_dict(payload))
    return requests


def expand_matrix(spec: dict, max_requests: "int | None" = None) -> list:
    """Turn a matrix-spec JSON object into a list of requests.

    Two spellings are accepted (exactly one must be used)::

        {"requests": [{...}, {...}]}          # explicit list
        {"base": {...}, "grid": {"k": [..]}}  # cartesian product over base

    This is the shared grammar of the ``POST /sweep`` body and the CLI's
    ``repro-dehealth sweep --matrix`` file.
    """
    if not isinstance(spec, dict):
        raise ConfigError(
            f"matrix spec must be a JSON object, got {type(spec).__name__}"
        )
    unknown = set(spec) - {"requests", "base", "grid"}
    if unknown:
        raise ConfigError(
            f"unknown matrix spec fields: {sorted(unknown)}; "
            "allowed: ['base', 'grid', 'requests']"
        )
    if "requests" in spec:
        if "base" in spec or "grid" in spec:
            raise ConfigError("pass either 'requests' or 'base'+'grid', not both")
        specs = spec["requests"]
        if not isinstance(specs, list) or not specs:
            raise ConfigError("'requests' must be a non-empty list")
        requests = [AttackRequest.from_dict(item) for item in specs]
    elif "grid" in spec:
        requests = expand_grid(
            spec.get("base", {}), spec["grid"], max_requests=max_requests
        )
    else:
        raise ConfigError("matrix spec needs 'requests' or 'base'+'grid'")
    if max_requests is not None and len(requests) > max_requests:
        raise ConfigError(
            f"sweep of {len(requests)} requests exceeds the cap of {max_requests}"
        )
    return requests


# --- shard planning -----------------------------------------------------


def plan_shards(requests, fingerprints: "dict | None" = None) -> list:
    """Group requests by split so each shard needs exactly one fit.

    Returns ``[(shard_key, [(index, request), ...]), ...]`` where
    ``shard_key`` is ``(corpus-or-fingerprint, split_key)``.  Shards are
    ordered by first appearance in the input and each shard preserves input
    order, so execution plans — and therefore session reuse patterns — are
    deterministic.  The whole batch is validated up front: nothing runs if
    any request is malformed.
    """
    shards: dict = {}
    for index, request in enumerate(requests):
        request.validate()
        corpus_id = (fingerprints or {}).get(request.corpus, request.corpus)
        key = (corpus_id, request.split_key())
        shards.setdefault(key, []).append((index, request))
    return list(shards.items())


def _run_shard(dataset, request_payloads: list, extractor) -> list:
    """Worker entry: one fitted session serves every request of the shard.

    Module-level so it pickles under the ``process`` backend.  Reports come
    back as wire dicts (cheap to pickle, schema-checked on merge).
    """
    requests = [AttackRequest.from_dict(p) for p in request_payloads]
    first = requests[0]
    session = AttackSession.from_dataset(
        dataset,
        world=first.world,
        aux_fraction=first.aux_fraction,
        overlap_ratio=first.overlap_ratio,
        split_seed=first.split_seed,
        extractor=extractor,
        extract_workers=first.extract_workers,
    )
    return [session.run(request).to_dict() for request in requests]


# --- canonical serialization -------------------------------------------


def canonical_report_json(reports, indent: "int | None" = None) -> str:
    """Deterministic JSON for a merged report list (golden-comparable).

    Volatile fields (``elapsed_ms``, ``reused_fit``) are dropped and keys
    are sorted, so two runs that agree on the science produce byte-identical
    strings however they were scheduled.
    """
    payload = [report.canonical_dict() for report in reports]
    return json.dumps(payload, indent=indent, sort_keys=True) + (
        "\n" if indent is not None else ""
    )


# --- executor -----------------------------------------------------------


class SweepExecutor:
    """Plans, shards, and executes an attack matrix against an engine.

    ``workers=1`` (the default) runs serially through the engine — identical
    behaviour, sessions cached as usual.  ``workers>1`` fans shards out to a
    pool; with the ``process`` backend each worker rebuilds its shard's
    session from the pickled corpus (one fit per shard, zero shared state),
    with the ``thread`` backend shards share the engine's (locked) session
    cache and fitted sessions remain available afterwards.
    """

    def __init__(
        self,
        engine,
        workers: "int | None" = 1,
        backend: str = "process",
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        if backend not in BACKEND_CHOICES:
            raise ConfigError(
                f"backend must be one of {BACKEND_CHOICES}, got {backend!r}"
            )
        self.engine = engine
        self.workers = resolve_workers(workers)
        self.backend = "serial" if self.workers == 1 else backend
        # reports computed through the engine are attributed (and, with a
        # state store, persisted) under this tenant
        self.tenant = tenant

    # -- planning --------------------------------------------------------

    def plan(self, requests) -> list:
        """Validated shard plan for ``requests`` (see :func:`plan_shards`)."""
        normalized = [
            AttackRequest.from_dict(r) if isinstance(r, dict) else r
            for r in requests
        ]
        if not normalized:
            return []
        # resolve every corpus up front — unknown names must fail before
        # any shard starts, not mid-sweep
        fingerprints = {}
        for request in normalized:
            if request.corpus not in fingerprints:
                fingerprints[request.corpus] = self.engine.fingerprint(
                    request.corpus
                )
        return plan_shards(normalized, fingerprints)

    # -- execution -------------------------------------------------------

    def execute(self, requests) -> list:
        """Run the matrix; reports are merged back into input order."""
        shards = self.plan(requests)
        if not shards:
            return []
        n_requests = sum(len(members) for _, members in shards)
        if self.backend == "serial" or len(shards) == 1:
            return self._execute_serial(shards, n_requests)
        if self.backend == "thread":
            return self._execute_pool(shards, n_requests, ThreadPoolExecutor)
        return self._execute_pool(shards, n_requests, ProcessPoolExecutor)

    def _execute_serial(self, shards, n_requests: int) -> list:
        merged: list = [None] * n_requests
        for _, members in shards:
            for index, request in members:
                merged[index] = self.engine.attack(request, tenant=self.tenant)
        return merged

    def _shard_thread(self, members) -> list:
        """Thread-backend shard: one engine session, run in input order."""
        reports = []
        for _, request in members:
            reports.append(self.engine.attack(request, tenant=self.tenant))
        return [report.to_dict() for report in reports]

    def _execute_pool(self, shards, n_requests: int, pool_cls) -> list:
        merged: list = [None] * n_requests
        max_workers = min(self.workers, len(shards))
        with pool_cls(max_workers=max_workers) as pool:
            futures = {}
            for key, members in shards:
                if pool_cls is ThreadPoolExecutor:
                    future = pool.submit(self._shard_thread, members)
                else:
                    dataset = self.engine.corpus(members[0][1].corpus)
                    future = pool.submit(
                        _run_shard,
                        dataset,
                        [request.to_dict() for _, request in members],
                        self.engine.extractor,
                    )
                futures[future] = members
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            failure = next(
                (f.exception() for f in done if f.exception() is not None), None
            )
            if failure is not None:
                for future in not_done:
                    future.cancel()
                raise failure
            for future, members in futures.items():
                payloads = future.result()
                for (index, _), payload in zip(members, payloads):
                    merged[index] = AttackReport.from_dict(payload)
        if pool_cls is ProcessPoolExecutor:
            self.engine.record_external_attacks(n_requests)
            # worker processes had no store handle: persist the merged
            # batch from the parent (idempotent; no-op without a store)
            self.engine.record_reports(merged, tenant=self.tenant)
        return merged
