"""The attack engine: corpus registry + session cache + batch entry points.

The :class:`Engine` is the process-wide front door the CLI, the experiments,
and the :mod:`repro.service` WSGI layer all share.  It keys
:class:`~repro.api.AttackSession` instances by ``(dataset fingerprint,
split parameters)``, so any number of :class:`~repro.api.AttackRequest`
variants that agree on corpus and split reuse one fitted session — one
feature-extraction pass, one similarity computation.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.api.protocol import (
    DEFAULT_TENANT,
    AttackReport,
    AttackRequest,
    request_hash,
)
from repro.api.session import AttackSession
from repro.errors import ConfigError
from repro.forum.models import ForumDataset
from repro.stylometry.cache import ExtractionCache
from repro.stylometry.extractor import FeatureExtractor

#: Corpus presets :meth:`Engine.generate` accepts.
PRESET_CHOICES: tuple = ("webmd", "healthboards")


def dataset_fingerprint(dataset: ForumDataset) -> str:
    """A content fingerprint of a corpus: name, sizes, users, and post text.

    Post text is included so re-registering a same-shaped corpus with edited
    content invalidates any cached sessions keyed on the old fingerprint.
    """
    digest = hashlib.sha1()
    digest.update(dataset.name.encode("utf-8"))
    digest.update(
        f":{dataset.n_users}:{dataset.n_posts}:{dataset.n_threads}".encode()
    )
    for uid in sorted(dataset.user_ids()):
        digest.update(uid.encode("utf-8"))
        digest.update(b"\0")
        for post in dataset.posts_of(uid):
            digest.update(post.post_id.encode("utf-8"))
            digest.update(b"\1")
            digest.update(post.text.encode("utf-8"))
            digest.update(b"\0")
    return digest.hexdigest()[:16]


class Engine:
    """Session-based attack engine over a registry of named corpora.

    ``max_sessions`` bounds the LRU cache of fitted sessions (each one pins
    two UDA graphs plus dense similarity matrices); the least recently used
    session is evicted when the cap is exceeded, so a long-running service
    cannot be grown without bound by varying split parameters.

    The engine's default extractor carries a shared
    :class:`~repro.stylometry.ExtractionCache`, so every session — and
    every shard of a serial or thread-backend sweep — extracts each
    distinct post exactly once, however many splits re-partition the same
    corpus.

    ``cache_budget_bytes`` bounds the total bytes of the per-session
    similarity caches plus the shared extraction cache: after each attack,
    least-recently-used sessions' similarity caches are dropped first, then
    the extraction cache, until the total fits.  ``None`` (the default)
    disables eviction — current behavior unchanged.

    ``store`` plugs in a :class:`repro.store.StateStore`: registered
    corpora and finished reports are persisted through it, the registry is
    rehydrated from it on construction (no re-upload after a restart), and
    — when the store is *file-backed* — an attack whose ``(corpus
    fingerprint, request hash)`` pair already has a stored report returns
    that report without fitting anything, which is how resumed sweeps skip
    already-completed shards.  ``None`` (the default) keeps the engine
    purely in-memory; with an in-memory store, reports are recorded for
    observability but never short-circuit execution.
    """

    def __init__(
        self,
        extractor: "FeatureExtractor | None" = None,
        max_sessions: int = 16,
        cache_budget_bytes: "int | None" = None,
        store=None,
    ) -> None:
        if max_sessions < 1:
            raise ConfigError(f"max_sessions must be >= 1, got {max_sessions}")
        if cache_budget_bytes is not None and cache_budget_bytes < 0:
            raise ConfigError(
                f"cache_budget_bytes must be >= 0 or None, got {cache_budget_bytes}"
            )
        self.extractor = extractor or FeatureExtractor(cache=ExtractionCache())
        self.max_sessions = max_sessions
        self.cache_budget_bytes = cache_budget_bytes
        self.cache_budget_evictions = 0
        self.store = None
        self.report_reuses = 0
        self._tenant_usage: dict = {}
        # Guards the registry and the session LRU: the threading WSGI
        # server and thread-backend sweeps hit one engine concurrently, and
        # the lookup-or-create in session_for must be atomic so each
        # (corpus, split) pair gets exactly one session (one fit).
        # Per-request *execution* happens outside this lock, under the
        # session's own lock, so distinct splits run concurrently.
        self._lock = threading.RLock()
        self._corpora: dict = {}
        self._fingerprints: dict = {}
        self._sessions: OrderedDict = OrderedDict()
        self._session_meta: dict = {}
        self.attacks = 0
        self.session_hits = 0
        self.session_evictions = 0
        if store is not None:
            self.attach_store(store)

    # --- durable state --------------------------------------------------

    def attach_store(self, store) -> int:
        """Adopt a :class:`repro.store.StateStore` and rehydrate from it.

        Every corpus the store holds lands in the in-memory registry
        (fitting stays on demand — only the corpus bytes were persisted);
        corpora registered *before* attaching are written through.  Returns
        the number of corpora rehydrated.  The service layer uses this to
        give store-less engines its own (possibly in-memory) state.
        """
        with self._lock:
            if self.store is not None and self.store is not store:
                raise ConfigError("engine already has a different state store")
            self.store = store
            for name in sorted(self._corpora):
                store.corpora.put(name, self._corpora[name], self._fingerprints[name])
            rehydrated = 0
            for name, fingerprint, dataset in store.corpora.load_all():
                if name not in self._corpora:
                    self._corpora[name] = dataset
                    self._fingerprints[name] = fingerprint
                    rehydrated += 1
            return rehydrated

    def refresh_corpora(self) -> int:
        """Pull corpora other processes registered into the attached store.

        With several server processes sharing one ``--state-dir``, a corpus
        uploaded through process A exists only in the database until
        process B refreshes.  Loads every stored corpus whose fingerprint
        is not already registered in memory; returns how many were added.
        No-op (0) without a store.
        """
        with self._lock:
            if self.store is None:
                return 0
            stale = [
                name
                for name, fingerprint in (
                    (entry["name"], entry["fingerprint"])
                    for entry in self.store.corpora.list()
                )
                if self._fingerprints.get(name) != fingerprint
            ]
            added = 0
            for name in stale:
                loaded = self.store.corpora.get(name)
                if loaded is None:
                    continue
                fingerprint, dataset = loaded
                self._corpora[name] = dataset
                self._fingerprints[name] = fingerprint
                added += 1
            return added

    def _note_tenant_use(self, tenant: str, key, reused: bool) -> None:
        """Per-tenant accounting (caller holds the engine lock)."""
        usage = self._tenant_usage.setdefault(
            tenant, {"attacks": 0, "report_reuses": 0, "sessions": set()}
        )
        if reused:
            usage["report_reuses"] += 1
        else:
            usage["attacks"] += 1
        if key is not None:
            usage["sessions"].add(key)

    # --- corpus registry ------------------------------------------------

    def register(self, name: str, dataset: ForumDataset) -> dict:
        """Register (or replace) a corpus under ``name``; returns a summary.

        With a state store attached the corpus is also persisted (canonical
        JSONL keyed by fingerprint); re-registering an identical corpus is
        a cheap no-op on the store side.
        """
        if not name:
            raise ConfigError("corpus name must be non-empty")
        fingerprint = dataset_fingerprint(dataset)
        with self._lock:
            self._corpora[name] = dataset
            self._fingerprints[name] = fingerprint
            if self.store is not None:
                self.store.corpora.put(name, dataset, fingerprint)
            return self.describe(name)

    def generate(
        self,
        preset: str = "webmd",
        users: int = 300,
        seed: int = 0,
        name: "str | None" = None,
    ) -> dict:
        """Generate a synthetic corpus from a preset and register it."""
        from repro.datagen import healthboards_like, webmd_like

        if preset not in PRESET_CHOICES:
            raise ConfigError(
                f"preset must be one of {PRESET_CHOICES}, got {preset!r}"
            )
        if users < 1:
            raise ConfigError(f"users must be >= 1, got {users}")
        maker = webmd_like if preset == "webmd" else healthboards_like
        generated = maker(n_users=users, seed=seed)
        return self.register(
            name or f"{preset}-{users}-{seed}", generated.dataset
        )

    def corpus(self, name: str) -> ForumDataset:
        with self._lock:
            if name not in self._corpora:
                raise ConfigError(
                    f"unknown corpus {name!r}; registered: {sorted(self._corpora)}"
                )
            return self._corpora[name]

    def fingerprint(self, name: str) -> str:
        """The registered content fingerprint of corpus ``name``."""
        with self._lock:
            self.corpus(name)
            return self._fingerprints[name]

    def describe(self, name: str) -> dict:
        with self._lock:
            dataset = self.corpus(name)
            return {
                "corpus": name,
                "name": dataset.name,
                "fingerprint": self._fingerprints[name],
                "users": dataset.n_users,
                "posts": dataset.n_posts,
                "threads": dataset.n_threads,
            }

    @property
    def corpus_names(self) -> list:
        with self._lock:
            return sorted(self._corpora)

    # --- session cache --------------------------------------------------

    def session_for(self, request: AttackRequest) -> AttackSession:
        """The session serving ``request``'s (corpus, split) pair.

        Lookup-or-create is atomic under the engine lock, so concurrent
        callers agreeing on (corpus, split) always share one session — and
        therefore one fit.
        """
        with self._lock:
            dataset = self.corpus(request.corpus)
            key = (self._fingerprints[request.corpus], request.split_key())
            session = self._sessions.get(key)
            if session is not None:
                self.session_hits += 1
                self._sessions.move_to_end(key)
                return session
            session = AttackSession.from_dataset(
                dataset,
                world=request.world,
                aux_fraction=request.aux_fraction,
                overlap_ratio=request.overlap_ratio,
                split_seed=request.split_seed,
                extractor=self.extractor,
                extract_workers=request.extract_workers,
            )
            self._sessions[key] = session
            self._session_meta[key] = {
                "corpus": request.corpus,
                "world": request.world,
                "param": request.split_key()[1],
                "split_seed": request.split_seed,
            }
            while len(self._sessions) > self.max_sessions:
                evicted, _ = self._sessions.popitem(last=False)
                self._session_meta.pop(evicted, None)
                self.session_evictions += 1
            return session

    # --- attack entry points --------------------------------------------

    def attack(self, request, tenant: str = DEFAULT_TENANT) -> AttackReport:
        """Run one attack; ``request`` may be an AttackRequest or a dict.

        With a *persistent* store attached, a request whose report is
        already stored for this tenant returns the stored report (counted
        in ``report_reuses``) without touching a session — the
        restart/resume fast path.  Freshly computed reports are persisted
        (idempotently) before returning.
        """
        if isinstance(request, dict):
            request = AttackRequest.from_dict(request)
        request.validate()
        fingerprint = None
        if self.store is not None:
            fingerprint = self.fingerprint(request.corpus)
            if self.store.persistent:
                stored = self.store.reports.lookup(
                    fingerprint, request, tenant=tenant
                )
                if stored is not None:
                    with self._lock:
                        self.attacks += 1
                        self.report_reuses += 1
                        key = (fingerprint, request.split_key())
                        self._note_tenant_use(tenant, key, reused=True)
                    self.store.bump_tenant(tenant, "attacks")
                    return stored
        with self._lock:
            self.attacks += 1
            session = self.session_for(request)
            self._note_tenant_use(
                tenant,
                (self._fingerprints[request.corpus], request.split_key()),
                reused=False,
            )
        # run outside the engine lock: requests on *different* splits
        # proceed concurrently, same-split requests serialize on their
        # session's own lock
        report = session.run(request)
        if self.store is not None:
            self.store.reports.record(report, fingerprint, tenant=tenant)
            self.store.bump_tenant(tenant, "attacks")
        self.enforce_cache_budget()
        return report

    def record_reports(self, reports, tenant: str = DEFAULT_TENANT) -> int:
        """Persist already-computed reports (idempotent); returns new rows.

        The process-backend sweep executor computes reports in worker
        processes that have no store handle, so the parent records the
        merged batch here.  No-op without a store.
        """
        if self.store is None:
            return 0
        recorded = 0
        for report in reports:
            fingerprint = self.fingerprint(report.request.corpus)
            if self.store.reports.record(report, fingerprint, tenant=tenant):
                recorded += 1
        return recorded

    def sweep(
        self,
        requests,
        parallel: "int | None" = 1,
        backend: str = "process",
        tenant: str = DEFAULT_TENANT,
    ) -> list:
        """Run a batch of variants; same-split requests share one session.

        ``parallel`` is the worker count for the sharded executor
        (``None``/0 = one worker per available core).  With ``parallel=1``
        the sweep runs serially in-process; either way the whole batch is
        validated up front and reports come back in input order, with every
        non-volatile field identical between the two paths (see
        :mod:`repro.api.executor` for the determinism guarantee).
        """
        from repro.api.executor import SweepExecutor

        return SweepExecutor(
            self, workers=parallel, backend=backend, tenant=tenant
        ).execute(requests)

    def record_external_attacks(self, count: int) -> None:
        """Fold attacks run outside this process (worker shards) into stats."""
        with self._lock:
            self.attacks += count

    # --- cache budget -----------------------------------------------------

    def _extraction_cache(self) -> "ExtractionCache | None":
        return getattr(self.extractor, "cache", None)

    def _cache_bytes_total(self) -> int:
        """Accounted cache bytes: per-session similarity matrices + refined
        post matrices, plus the shared extraction cache."""
        total = sum(
            session.cache_nbytes() for session in self._sessions.values()
        )
        extraction = self._extraction_cache()
        return total + (extraction.nbytes() if extraction is not None else 0)

    def enforce_cache_budget(self) -> int:
        """Evict caches until accounted bytes fit ``cache_budget_bytes``.

        Eviction order is least-recently-used session first (the session
        LRU the engine already maintains), similarity caches before the
        shared extraction cache — a hot session's matrices survive as long
        as anything colder can be dropped instead.  One exception keeps
        that promise honest: when the extraction cache *alone* exceeds the
        budget, no amount of session eviction can help, so it is dropped
        first instead of churning every session's matrices pointlessly.
        Returns the number of caches cleared.  No-op when no budget is
        set.  Best-effort by design: a session mid-fit may re-insert an
        entry right after the sweep, which the next enforcement pass will
        see.
        """
        if self.cache_budget_bytes is None:
            return 0
        cleared = 0
        with self._lock:
            budget = self.cache_budget_bytes
            extraction = self._extraction_cache()
            if (
                extraction is not None
                and extraction.nbytes() > budget
                and self._cache_bytes_total() > budget
            ):
                extraction.clear()
                cleared += 1
            for session in list(self._sessions.values()):
                if self._cache_bytes_total() <= budget:
                    break
                if session.cache_nbytes() > 0:
                    session.drop_caches()
                    cleared += 1
            if (
                extraction is not None
                and extraction.nbytes() > 0
                and self._cache_bytes_total() > budget
            ):
                extraction.clear()
                cleared += 1
            self.cache_budget_evictions += cleared
        return cleared

    def linkage(self, users: int = 300, seed: int = 0) -> dict:
        """Run the NameLink/AvatarLink campaign; JSON-friendly summary."""
        from repro.experiments.linkage_exp import run_linkage_experiment

        if users < 1:
            raise ConfigError(f"users must be >= 1, got {users}")
        result = run_linkage_experiment(n_users=users, seed=seed)
        report = result.report
        return {
            "users": report.n_users,
            "name_linked": report.n_name_linked,
            "avatar_targets": report.n_avatar_targets,
            "avatar_linked": report.n_avatar_linked,
            "avatar_link_rate": report.avatar_link_rate,
            "overlap_both_tools": len(report.overlap_ids),
            "multi_service_fraction": report.multi_service_fraction,
            "name_precision": report.name_precision,
            "avatar_precision": report.avatar_precision,
            "summary": report.summary_lines(),
        }

    # --- introspection --------------------------------------------------

    def stats(self) -> dict:
        """Engine-wide, JSON-safe view of corpora, sessions, and caches."""
        from repro import __version__

        with self._lock:
            sessions = [
                {**self._session_meta[key], **session.stats()}
                for key, session in self._sessions.items()
            ]
            extraction = self._extraction_cache()
            # engine-wide per-policy blocking view: every session's mask
            # builds folded together, so a long-running `serve` can watch
            # candidate generation without walking the session list
            blocking: dict = {}
            for stats in sessions:
                for entry in stats["blocking"]:
                    agg = blocking.setdefault(
                        entry["policy"],
                        {"masks_built": 0, "candidates": 0, "generation_s": 0.0},
                    )
                    agg["masks_built"] += entry["masks_built"]
                    agg["candidates"] += entry["candidates"]
                    agg["generation_s"] += entry["generation_s"]
            # engine-wide refined pre-rank accounting (runs with
            # refined_keep_fraction < 1.0 across every live session)
            refined_prerank = {"users": 0, "candidates_in": 0, "candidates_kept": 0}
            for stats in sessions:
                for key in refined_prerank:
                    refined_prerank[key] += stats["refined_prerank"][key]
            # per-tenant view: attack/reuse counters plus cache-byte
            # attribution — every still-live session a tenant has touched
            # contributes its bytes to that tenant (overlapping tenants
            # each see the shared session's full bytes; the engine-wide
            # totals above remain the non-overlapping truth)
            tenants = {
                tenant: {
                    "attacks": usage["attacks"],
                    "report_reuses": usage["report_reuses"],
                    "sessions": sum(
                        1 for key in usage["sessions"] if key in self._sessions
                    ),
                    "cache_bytes": sum(
                        self._sessions[key].cache_nbytes()
                        for key in usage["sessions"]
                        if key in self._sessions
                    ),
                }
                for tenant, usage in sorted(self._tenant_usage.items())
            }
            return {
                "version": __version__,
                "attacks": self.attacks,
                "report_reuses": self.report_reuses,
                "session_hits": self.session_hits,
                "session_evictions": self.session_evictions,
                "max_sessions": self.max_sessions,
                "store": (
                    None if self.store is None else self.store.describe()
                ),
                "tenants": tenants,
                "cache_bytes": sum(s["similarity_bytes"] for s in sessions),
                "post_matrix_bytes": sum(
                    s["post_matrix_bytes"] for s in sessions
                ),
                "cache_budget_bytes": self.cache_budget_bytes,
                "cache_budget_evictions": self.cache_budget_evictions,
                "blocking": blocking,
                "refined_prerank": refined_prerank,
                "extraction": (
                    extraction.counters() if extraction is not None else None
                ),
                "corpora": {
                    name: self.describe(name) for name in self.corpus_names
                },
                "sessions": sessions,
            }
