"""Session-based public API for the De-Health reproduction.

The staged surface the CLI, experiments, examples, and the WSGI service all
build on:

* :class:`AttackRequest` / :class:`AttackReport` — the declarative,
  JSON-serializable protocol describing one attack variant and its results;
* :class:`AttackSession` — cache-aware executor over one Δ1/Δ2 split
  (feature extraction, similarity matrices, and refined-phase post matrices
  are each computed once per session, however many variants run);
* :class:`Engine` — corpus registry + session cache + batch entry points
  (``attack``, ``sweep``, ``generate``, ``linkage``, ``stats``);
* :class:`SweepExecutor` — plans an attack matrix into per-split shards and
  executes them across worker processes (``Engine.sweep(parallel=N)`` is
  the front door); :func:`expand_matrix` is the shared matrix-spec grammar
  and :func:`canonical_report_json` the golden-comparable serialization.

Quickstart::

    from repro.api import AttackRequest, Engine

    engine = Engine()
    engine.generate(preset="webmd", users=300, seed=0, name="demo")
    base = AttackRequest(corpus="demo", top_k=10, classifier="knn")
    reports = engine.sweep([base.variant(top_k=k) for k in (5, 10, 20)])
"""

from repro.api.engine import Engine, dataset_fingerprint
from repro.core.config import BLOCKING_CHOICES
from repro.stylometry import ExtractionCache, MAX_EXTRACT_WORKERS
from repro.api.executor import (
    BACKEND_CHOICES,
    MAX_WORKERS,
    SweepExecutor,
    canonical_report_json,
    expand_grid,
    expand_matrix,
    plan_shards,
    resolve_workers,
)
from repro.api.protocol import (
    DEFAULT_TENANT,
    AttackReport,
    AttackRequest,
    VOLATILE_REPORT_FIELDS,
    WORLD_CHOICES,
    request_hash,
)
from repro.api.session import AttackSession

__all__ = [
    "AttackReport",
    "AttackRequest",
    "AttackSession",
    "BACKEND_CHOICES",
    "BLOCKING_CHOICES",
    "DEFAULT_TENANT",
    "Engine",
    "ExtractionCache",
    "MAX_EXTRACT_WORKERS",
    "MAX_WORKERS",
    "SweepExecutor",
    "VOLATILE_REPORT_FIELDS",
    "WORLD_CHOICES",
    "canonical_report_json",
    "dataset_fingerprint",
    "expand_grid",
    "expand_matrix",
    "plan_shards",
    "request_hash",
    "resolve_workers",
]
