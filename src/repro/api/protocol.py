"""Declarative request/report protocol for the attack engine.

:class:`AttackRequest` is the JSON-serializable description of one attack
variant — which corpus, how to split it, and every knob of the two-phase
De-Health pipeline.  :class:`AttackReport` carries the measurements back.
Both round-trip through ``to_dict``/``from_dict`` so they can travel over
the :mod:`repro.service` wire format unchanged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from repro.core.config import DeHealthConfig, SimilarityWeights
from repro.errors import ConfigError

#: Split worlds an :class:`AttackRequest` can ask for.
WORLD_CHOICES: tuple = ("closed", "open")

#: Tenant every engine/service/store entry point assumes when none is
#: given (the ``X-Tenant`` header at the service layer).  Defined here —
#: the lowest layer that speaks tenancy — so the engine, the service, and
#: :mod:`repro.store` agree without import cycles.
DEFAULT_TENANT = "default"

#: Report fields that vary run-to-run without changing the science:
#: ``elapsed_ms`` is wall clock, ``reused_fit`` depends on scheduling.
#: Canonical (golden-comparable) serialization drops them.
VOLATILE_REPORT_FIELDS: tuple = ("elapsed_ms", "reused_fit")


def _weights_tuple(value) -> tuple:
    """Normalise any weights spelling to a ``(c1, c2, c3)`` float tuple."""
    if isinstance(value, SimilarityWeights):
        return (value.degree, value.distance, value.attribute)
    if isinstance(value, dict):
        unknown = set(value) - {"degree", "distance", "attribute"}
        if unknown:
            raise ConfigError(
                f"unknown weight keys {sorted(unknown)}; "
                "expected degree/distance/attribute"
            )
        return (
            float(value.get("degree", 0.0)),
            float(value.get("distance", 0.0)),
            float(value.get("attribute", 0.0)),
        )
    try:
        out = tuple(float(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"weights must be three numbers, got {value!r}") from exc
    if len(out) != 3:
        raise ConfigError(f"weights must have exactly 3 entries, got {len(out)}")
    return out


@dataclass(frozen=True)
class AttackRequest:
    """One attack variant: corpus reference + split spec + pipeline knobs.

    ``corpus`` names a dataset registered with the :class:`~repro.api.Engine`;
    ``world``/``aux_fraction``/``overlap_ratio``/``split_seed`` determine the
    Δ1/Δ2 split (and therefore which cached :class:`~repro.api.AttackSession`
    serves the request); everything else maps 1:1 onto
    :class:`~repro.core.DeHealthConfig`.  ``ks`` lists the K values the
    report's success rates are evaluated at (defaults to ``(1, 5, top_k)``);
    ``refined=False`` stops after the Top-K phase.

    ``blocking`` selects the candidate-generation policy of the Top-K
    phase (``"none"`` = exact dense scoring; single policies or ``"+"``
    composites like ``"lsh+degree_band"``; see
    :mod:`repro.core.blocking`).  The blocking fields serialize only when
    a policy is active — and the ANN knobs (``blocking_lsh_bands`` /
    ``blocking_lsh_rows`` for ``lsh``, ``blocking_ann_m`` /
    ``blocking_ann_ef`` for ``ann_graph``, ``blocking_seed`` for either)
    only when their policy atom is — so default (dense) requests keep
    their historical wire format — and the golden canonical report JSON —
    byte-identical.

    ``refined_keep_fraction`` pre-ranks the refined phase: each
    candidate set is cut to its top ``ceil(fraction × |Cu|)`` entries by
    phase-1 similarity before any classifier is trained (``1.0`` = no
    cut, the historical behaviour).  It serializes only when active —
    and is normalized back to ``1.0`` when ``refined=False``, where it
    has nothing to act on — so default requests keep their wire format.

    ``extract_workers`` is the process-pool width of the phase-0 feature
    extraction (``1`` = serial, ``0`` = one per core).  A pure
    performance knob — extraction is byte-identical at any width — so it
    too serializes only when non-default.

    ``request_deadline_s`` is the per-request wall-clock watchdog
    (:mod:`repro.core.deadline`): past it the pipeline raises a
    structured :class:`~repro.errors.DeadlineExceeded` at the next stage
    boundary.  An ops knob, not science — a run that finishes in time is
    byte-identical either way — so it serializes only when set and
    default requests keep their historical wire format and hashes.
    """

    corpus: str = "default"
    world: str = "closed"
    aux_fraction: float = 0.5
    overlap_ratio: float = 0.5
    split_seed: int = 0
    top_k: int = 10
    selection: str = "direct"
    classifier: str = "smo"
    weights: tuple = (0.05, 0.05, 0.90)
    n_landmarks: int = 50  # matches the DeHealthConfig corpus-scale default
    attribute_weight_cap: int = 64
    filtering: bool = False
    filter_epsilon: float = 0.01
    filter_levels: int = 10
    verification: "str | None" = None
    verification_r: float = 0.25
    false_addition_count: "int | None" = None
    use_structural_features: bool = True
    refined: bool = True
    refined_keep_fraction: float = 1.0
    ks: tuple = ()
    blocking: str = "none"
    blocking_band_width: float = 1.0
    blocking_min_shared: int = 1
    blocking_keep: float = 0.2
    blocking_lsh_bands: int = 48
    blocking_lsh_rows: int = 6
    blocking_ann_m: int = 12
    blocking_ann_ef: int = 48
    blocking_seed: int = 0
    extract_workers: int = 1
    request_deadline_s: "float | None" = None
    seed: int = 0

    def _blocking_atoms(self) -> set:
        """The policy atoms named by ``blocking``, leniently split.

        Validation happens in :meth:`validate` (via the config); this
        helper only decides which knobs are *relevant*, so construction of
        a not-yet-validated request never raises.
        """
        if not isinstance(self.blocking, str):
            return set()
        return {part.strip() for part in self.blocking.split("+")}

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", _weights_tuple(self.weights))
        object.__setattr__(self, "ks", tuple(int(k) for k in self.ks))
        # normalize inert policy parameters so equal-behaviour requests
        # compare equal and to_dict/from_dict stays a strict round-trip
        # (a knob is omitted from the wire whenever no active policy atom
        # reads it)
        atoms = self._blocking_atoms()
        if not atoms & {"degree_band", "union"}:
            object.__setattr__(self, "blocking_band_width", 1.0)
        if not atoms & {"attr_index", "union"}:
            object.__setattr__(self, "blocking_min_shared", 1)
        if not atoms & {"attr_index", "union", "lsh", "ann_graph"}:
            object.__setattr__(self, "blocking_keep", 0.2)
        if "lsh" not in atoms:
            object.__setattr__(self, "blocking_lsh_bands", 48)
            object.__setattr__(self, "blocking_lsh_rows", 6)
        if "ann_graph" not in atoms:
            object.__setattr__(self, "blocking_ann_m", 12)
            object.__setattr__(self, "blocking_ann_ef", 48)
        if not atoms & {"lsh", "ann_graph"}:
            object.__setattr__(self, "blocking_seed", 0)
        # the refined pre-rank knob is meaningless without a refined phase
        if not self.refined:
            object.__setattr__(self, "refined_keep_fraction", 1.0)

    # --- validation / conversion ---------------------------------------

    def to_config(self) -> DeHealthConfig:
        """The :class:`DeHealthConfig` this request describes (validated)."""
        config = DeHealthConfig(
            weights=SimilarityWeights(*self.weights),
            n_landmarks=self.n_landmarks,
            top_k=self.top_k,
            selection=self.selection,
            filtering=self.filtering,
            filter_epsilon=self.filter_epsilon,
            filter_levels=self.filter_levels,
            classifier=self.classifier,
            use_structural_features=self.use_structural_features,
            verification=self.verification,
            verification_r=self.verification_r,
            false_addition_count=self.false_addition_count,
            attribute_weight_cap=self.attribute_weight_cap,
            blocking=self.blocking,
            blocking_band_width=self.blocking_band_width,
            blocking_min_shared=self.blocking_min_shared,
            blocking_keep=self.blocking_keep,
            blocking_lsh_bands=self.blocking_lsh_bands,
            blocking_lsh_rows=self.blocking_lsh_rows,
            blocking_ann_m=self.blocking_ann_m,
            blocking_ann_ef=self.blocking_ann_ef,
            blocking_seed=self.blocking_seed,
            refined_keep_fraction=self.refined_keep_fraction,
            extract_workers=self.extract_workers,
            request_deadline_s=self.request_deadline_s,
            seed=self.seed,
        )
        config.validate()
        return config

    def validate(self) -> "AttackRequest":
        if self.world not in WORLD_CHOICES:
            raise ConfigError(
                f"world must be one of {WORLD_CHOICES}, got {self.world!r}"
            )
        if self.world == "closed" and not 0.0 < self.aux_fraction < 1.0:
            raise ConfigError(
                f"aux_fraction must be in (0, 1), got {self.aux_fraction}"
            )
        if self.world == "open" and not 0.0 < self.overlap_ratio <= 1.0:
            raise ConfigError(
                f"overlap_ratio must be in (0, 1], got {self.overlap_ratio}"
            )
        for k in self.ks:
            if k < 1:
                raise ConfigError(f"evaluation ks must be >= 1, got {k}")
        self.to_config()
        return self

    def evaluation_ks(self) -> tuple:
        """The K values the report's success rates cover, sorted, deduped."""
        ks = self.ks or (1, 5, self.top_k)
        return tuple(sorted(set(int(k) for k in ks)))

    def split_key(self) -> tuple:
        """Hashable identity of the split this request needs (sans corpus)."""
        if self.world == "closed":
            return ("closed", round(self.aux_fraction, 9), self.split_seed)
        return ("open", round(self.overlap_ratio, 9), self.split_seed)

    def variant(self, **changes) -> "AttackRequest":
        """A copy with the given fields changed (sweep convenience)."""
        return replace(self, **changes)

    # --- wire format ----------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "corpus": self.corpus,
            "world": self.world,
            "aux_fraction": self.aux_fraction,
            "overlap_ratio": self.overlap_ratio,
            "split_seed": self.split_seed,
            "top_k": self.top_k,
            "selection": self.selection,
            "classifier": self.classifier,
            "weights": list(self.weights),
            "n_landmarks": self.n_landmarks,
            "attribute_weight_cap": self.attribute_weight_cap,
            "filtering": self.filtering,
            "filter_epsilon": self.filter_epsilon,
            "filter_levels": self.filter_levels,
            "verification": self.verification,
            "verification_r": self.verification_r,
            "false_addition_count": self.false_addition_count,
            "use_structural_features": self.use_structural_features,
            "refined": self.refined,
            "ks": list(self.ks),
            "seed": self.seed,
        }
        # The blocking fields are serialized only when a policy is active:
        # default (dense) requests keep the pre-blocking wire format, so
        # checked-in goldens and external clients are unaffected.  The ANN
        # knobs are likewise scoped to their own policies, so attr_index /
        # degree_band requests keep their pre-ANN wire format.
        if self.blocking != "none":
            payload["blocking"] = self.blocking
            atoms = self._blocking_atoms()
            if atoms & {"degree_band", "union"}:
                payload["blocking_band_width"] = self.blocking_band_width
            if atoms & {"attr_index", "union"}:
                payload["blocking_min_shared"] = self.blocking_min_shared
            if atoms & {"attr_index", "union", "lsh", "ann_graph"}:
                payload["blocking_keep"] = self.blocking_keep
            if "lsh" in atoms:
                payload["blocking_lsh_bands"] = self.blocking_lsh_bands
                payload["blocking_lsh_rows"] = self.blocking_lsh_rows
            if "ann_graph" in atoms:
                payload["blocking_ann_m"] = self.blocking_ann_m
                payload["blocking_ann_ef"] = self.blocking_ann_ef
            if atoms & {"lsh", "ann_graph"}:
                payload["blocking_seed"] = self.blocking_seed
        # Serialized only when the pre-rank cut is active: default
        # requests keep the historical wire format (and hashes).
        if self.refined_keep_fraction != 1.0:
            payload["refined_keep_fraction"] = self.refined_keep_fraction
        # Performance knob, not science: serialized only when non-default,
        # so default requests keep the historical wire format.
        if self.extract_workers != 1:
            payload["extract_workers"] = self.extract_workers
        # Watchdog knob, not science: serialized only when armed, so
        # default requests keep the historical wire format (and hashes).
        if self.request_deadline_s is not None:
            payload["request_deadline_s"] = self.request_deadline_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AttackRequest":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"attack request must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown attack request fields: {sorted(unknown)}")
        try:
            return cls(**payload)
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ConfigError):
                raise
            raise ConfigError(f"bad attack request: {exc}") from exc


def request_hash(request: AttackRequest) -> str:
    """Content hash of a request's wire form (the report-dedup key).

    Computed over the sorted-key JSON of :meth:`AttackRequest.to_dict`, so
    two requests hash equal exactly when they serialize equal — inert
    knobs are already normalized away by ``__post_init__``, and the
    default wire format keeps historical hashes stable.  The
    :class:`~repro.store.AttackReportStore` keys stored reports on
    ``(tenant, corpus fingerprint, request_hash)``.
    """
    payload = json.dumps(
        request.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class AttackReport:
    """Measurements of one attack run, JSON-serializable.

    ``success_rates`` maps K -> Top-K success rate (the Fig 3/5 data at the
    requested ``ks``); the refined fields are ``None`` when the request set
    ``refined=False``.  ``reused_fit`` records whether the serving session
    already had its UDA graphs built (i.e. the expensive fit was shared).
    """

    request: AttackRequest
    n_anonymized: int
    n_auxiliary: int
    n_evaluated: int
    success_rates: dict = field(hash=False)
    refined_accuracy: "float | None" = None
    false_positive_rate: "float | None" = None
    rejection_rate: "float | None" = None
    n_correct: "int | None" = None
    elapsed_ms: float = 0.0
    reused_fit: bool = False

    def success_rate(self, k: int) -> float:
        return self.success_rates[int(k)]

    def to_dict(self) -> dict:
        return {
            "request": self.request.to_dict(),
            "n_anonymized": self.n_anonymized,
            "n_auxiliary": self.n_auxiliary,
            "n_evaluated": self.n_evaluated,
            "success_rates": {str(k): v for k, v in self.success_rates.items()},
            "refined_accuracy": self.refined_accuracy,
            "false_positive_rate": self.false_positive_rate,
            "rejection_rate": self.rejection_rate,
            "n_correct": self.n_correct,
            "elapsed_ms": self.elapsed_ms,
            "reused_fit": self.reused_fit,
        }

    def canonical_dict(self) -> dict:
        """The wire dict minus :data:`VOLATILE_REPORT_FIELDS`.

        Two reports with equal canonical dicts agree on every measured
        quantity; serial and parallel sweep execution are required to
        produce equal canonical dicts for equal requests.
        """
        payload = self.to_dict()
        for name in VOLATILE_REPORT_FIELDS:
            payload.pop(name, None)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AttackReport":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"attack report must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown attack report fields: {sorted(unknown)}")
        data = dict(payload)
        try:
            data["request"] = AttackRequest.from_dict(data.get("request") or {})
            data["success_rates"] = {
                int(k): float(v)
                for k, v in (data.get("success_rates") or {}).items()
            }
            return cls(**data)
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ConfigError):
                raise
            raise ConfigError(f"bad attack report: {exc}") from exc
