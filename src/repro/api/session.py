"""Cache-aware execution of attack variants over one fixed Δ1/Δ2 split.

An :class:`AttackSession` owns every expensive artifact of a graph pair —
the extracted UDA graphs (feature extraction), the similarity component
matrices, and the refined phase's per-user post matrices — so a sweep over
``top_k``, ``selection``, ``classifier``, weights, or verification settings
pays for each artifact exactly once.  Build/hit counters expose the reuse.
"""

from __future__ import annotations

import threading
import time

from repro.api.protocol import AttackReport, AttackRequest
from repro.core.deadline import deadline_scope
from repro.core.pipeline import DeHealth
from repro.core.similarity import SimilarityCache
from repro.errors import ConfigError
from repro.forum.models import ForumDataset
from repro.forum.split import SplitResult, closed_world_split, open_world_split
from repro.stylometry.extractor import FeatureExtractor


class PostMatrixCache(dict):
    """Per-user post-matrix store with O(1) byte accounting.

    A plain dict to its consumer (:class:`~repro.core.RefinedDeanonymizer`
    reads and writes it like any cache), plus a running byte total so the
    engine's ``cache_budget_bytes`` enforcement can account the refined
    phase's matrices without iterating a dict that another thread may be
    filling mid-run.
    """

    def __init__(self) -> None:
        super().__init__()
        self.nbytes_total = 0

    def __setitem__(self, key, value) -> None:
        previous = self.get(key)
        if previous is not None:
            self.nbytes_total -= int(previous.nbytes)
        self.nbytes_total += int(value.nbytes)
        super().__setitem__(key, value)

    def __delitem__(self, key) -> None:
        previous = self.get(key)
        if previous is not None:
            self.nbytes_total -= int(previous.nbytes)
        super().__delitem__(key)

    def pop(self, key, *default):
        if key in self:
            self.nbytes_total -= int(self[key].nbytes)
        return super().pop(key, *default)

    def popitem(self):
        key, value = super().popitem()
        self.nbytes_total -= int(value.nbytes)
        return key, value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default  # route through __setitem__ accounting
            return default
        return self[key]

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value  # route through __setitem__ accounting

    def clear(self) -> None:
        self.nbytes_total = 0
        super().clear()


class AttackSession:
    """Runs :class:`AttackRequest` variants against one split, with caching.

    The session is keyed by its split: every request routed here must agree
    on the dataset and split parameters (the :class:`~repro.api.Engine`
    guarantees that).  Only the attack knobs may vary between requests.
    """

    def __init__(
        self,
        split: SplitResult,
        extractor: "FeatureExtractor | None" = None,
        split_spec: "tuple | None" = None,
        extract_workers: int = 1,
    ) -> None:
        self.split = split
        # ``split_spec`` is the (world, param, seed) identity of the split
        # when known (sessions built via from_dataset); ``run`` rejects
        # requests whose split fields disagree with it, so reports never
        # carry provenance for a split that was not actually used.  Direct
        # constructor callers with custom splits leave it None.
        self.split_spec = split_spec
        self.extractor = extractor or FeatureExtractor()
        # Pool width of the phase-0 extraction when this session builds its
        # UDA graphs; a pure performance knob (output is byte-identical at
        # any width), so requests differing only here share the session.
        self.extract_workers = extract_workers
        # One lock per session: concurrent callers (threaded sweeps, the
        # threading WSGI server) serialize on the session so the fit and
        # every artifact cache stay consistent — one fit per split, ever.
        self._lock = threading.RLock()
        self._graphs = None
        self._similarity_cache = SimilarityCache()
        self._post_caches: dict = {}
        self.graph_builds = 0
        self.graph_hits = 0
        self.runs = 0
        # Cumulative refined pre-rank accounting across runs: how many
        # candidates phase 2 would have classified vs how many it did
        # (only runs with refined_keep_fraction < 1.0 contribute).
        self.refined_prerank = {
            "users": 0,
            "candidates_in": 0,
            "candidates_kept": 0,
        }

    @classmethod
    def from_dataset(
        cls,
        dataset: ForumDataset,
        world: str = "closed",
        aux_fraction: float = 0.5,
        overlap_ratio: float = 0.5,
        split_seed: int = 0,
        extractor: "FeatureExtractor | None" = None,
        extract_workers: int = 1,
    ) -> "AttackSession":
        """Split ``dataset`` per the spec and open a session over the split."""
        if world == "closed":
            split = closed_world_split(
                dataset, aux_fraction=aux_fraction, seed=split_seed
            )
            spec = ("closed", round(aux_fraction, 9), split_seed)
        elif world == "open":
            split = open_world_split(
                dataset, overlap_ratio=overlap_ratio, seed=split_seed
            )
            spec = ("open", round(overlap_ratio, 9), split_seed)
        else:
            raise ConfigError(f"world must be 'closed' or 'open', got {world!r}")
        return cls(
            split,
            extractor=extractor,
            split_spec=spec,
            extract_workers=extract_workers,
        )

    # --- cached artifacts ----------------------------------------------

    @property
    def graphs(self) -> tuple:
        """The (anonymized, auxiliary) UDA graph pair, built once."""
        from repro.graph.uda import UDAGraph

        with self._lock:
            if self._graphs is None:
                self.graph_builds += 1
                self._graphs = (
                    UDAGraph(
                        self.split.anonymized,
                        extractor=self.extractor,
                        extract_workers=self.extract_workers,
                    ),
                    UDAGraph(
                        self.split.auxiliary,
                        extractor=self.extractor,
                        extract_workers=self.extract_workers,
                    ),
                )
            else:
                self.graph_hits += 1
            return self._graphs

    @property
    def similarity_cache(self) -> SimilarityCache:
        return self._similarity_cache

    # --- execution ------------------------------------------------------

    def _check_request(self, request: AttackRequest) -> None:
        request.validate()
        if self.split_spec is not None and request.split_key() != self.split_spec:
            raise ConfigError(
                f"request split {request.split_key()} does not match this "
                f"session's split {self.split_spec}"
            )

    def run(self, request: AttackRequest) -> AttackReport:
        """Execute one attack variant, reusing every cached artifact."""
        self._check_request(request)
        with self._lock:
            # the scope covers lock acquisition's successor stages only —
            # a request that waited out its whole deadline behind another
            # fit still gets caught at the first pipeline boundary
            with deadline_scope(request.request_deadline_s):
                return self._run_checked(request)

    def _run_checked(self, request: AttackRequest) -> AttackReport:
        started = time.perf_counter()
        reused = self._graphs is not None
        anonymized, auxiliary = self.graphs
        caches = self._post_caches.setdefault(
            request.use_structural_features, (PostMatrixCache(), PostMatrixCache())
        )
        attack = DeHealth(request.to_config()).fit(
            anonymized,
            auxiliary,
            extractor=self.extractor,
            similarity_cache=self._similarity_cache,
            post_matrix_caches=caches,
        )
        truth = self.split.truth
        topk = attack.top_k_result(truth)
        success_rates = {
            k: topk.success_rate(k) for k in request.evaluation_ks()
        }
        refined_accuracy = false_positive_rate = rejection_rate = None
        n_correct = None
        if request.refined:
            result = attack.deanonymize()
            refined_accuracy = result.accuracy(truth)
            false_positive_rate = result.false_positive_rate(truth)
            rejection_rate = result.rejection_rate()
            n_correct = result.n_correct(truth)
            for key, value in attack._refined.prerank_stats.items():
                self.refined_prerank[key] += value
        self.runs += 1
        return AttackReport(
            request=request,
            n_anonymized=anonymized.n_users,
            n_auxiliary=auxiliary.n_users,
            n_evaluated=topk.n_evaluated,
            success_rates=success_rates,
            refined_accuracy=refined_accuracy,
            false_positive_rate=false_positive_rate,
            rejection_rate=rejection_rate,
            n_correct=n_correct,
            elapsed_ms=(time.perf_counter() - started) * 1e3,
            reused_fit=reused,
        )

    def sweep(self, requests) -> list:
        """Run many variants in order; all expensive artifacts are shared.

        The whole batch is validated before anything executes: a malformed
        or wrong-split request anywhere in the batch raises
        :class:`ConfigError` up front, instead of failing mid-sweep after
        earlier reports (and their provenance) have already been produced
        and are about to be thrown away.
        """
        requests = list(requests)
        for request in requests:
            self._check_request(request)
        with self._lock:
            reports = []
            for request in requests:
                # per-request scope: each variant gets its own budget, so
                # one slow variant cannot eat the whole sweep's deadline
                with deadline_scope(request.request_deadline_s):
                    reports.append(self._run_checked(request))
            return reports

    # --- introspection --------------------------------------------------

    def clear_similarity_cache(self) -> int:
        """Drop cached similarity artifacts (matrices, masks, pair scores).

        Returns how many entries were dropped.  The UDA graphs and post
        matrices stay; the next request rebuilds what it needs.
        """
        with self._lock:
            return self._similarity_cache.clear()

    def post_matrix_entries(self) -> int:
        """Cached per-user post matrices across both sides and flag values."""
        return sum(
            len(cache)
            for caches in list(self._post_caches.values())
            for cache in caches
        )

    def post_matrix_nbytes(self) -> int:
        """Bytes held by the refined phase's cached post matrices."""
        return sum(
            cache.nbytes_total
            for caches in list(self._post_caches.values())
            for cache in caches
        )

    def cache_nbytes(self) -> int:
        """Budget-accounted bytes: similarity cache + post matrices."""
        return self._similarity_cache.nbytes() + self.post_matrix_nbytes()

    def drop_caches(self) -> int:
        """Budget-eviction entry: clear the similarity and post-matrix
        caches *without* the session lock.

        The engine's byte-budget enforcer runs under the engine lock and
        must not wait on a session mid-fit; the similarity cache is
        internally synchronized and the post-matrix caches tolerate a
        racing re-insert (worst case, one matrix is re-extracted), so
        clearing them directly is safe — at worst an in-flight build
        re-inserts its entries afterwards.
        """
        dropped = self._similarity_cache.clear()
        for caches in list(self._post_caches.values()):
            for cache in caches:
                dropped += len(cache)
                cache.clear()
        return dropped

    def stats(self) -> dict:
        """Cache counters: graph builds/hits, similarity builds/hits/bytes.

        Deliberately does **not** take the session lock — ``Engine.stats``
        calls this under the engine lock, and waiting on a session mid-fit
        would stall every other engine operation.  The cache snapshots its
        own state under an internal mutex.
        """
        sim = self._similarity_cache.counters()
        return {
            "runs": self.runs,
            "graph_builds": self.graph_builds,
            "graph_hits": self.graph_hits,
            "similarity_builds": sim["builds"],
            "similarity_hits": sim["hits"],
            "similarity_entries": sim["entries"],
            "similarity_bytes": sim["bytes"],
            "post_matrix_entries": self.post_matrix_entries(),
            "post_matrix_bytes": self.post_matrix_nbytes(),
            "blocking": self._similarity_cache.blocking_stats(),
            "refined_prerank": dict(self.refined_prerank),
            "n_anonymized": self.split.anonymized.n_users,
            "n_auxiliary": self.split.auxiliary.n_users,
        }

    def __repr__(self) -> str:
        return (
            f"AttackSession(anon={self.split.anonymized.n_users}, "
            f"aux={self.split.auxiliary.n_users}, runs={self.runs})"
        )
