"""Person-name and username generation.

Usernames follow the empirical patterns Perito et al. observed (and the
paper's linkage attack exploits): many users derive handles from their real
name plus digits (low entropy, easily linkable), others pick generic
word-combination handles (higher entropy only when the words are rare).
The linkage world reuses these generators so that username-overlap between
services is realistic.
"""

from __future__ import annotations

import numpy as np

FIRST_NAMES: tuple[str, ...] = (
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason",
    "sharon", "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen",
    "gary", "amy", "nicholas", "shirley", "eric", "angela", "jonathan",
    "helen", "stephen", "anna", "larry", "brenda", "justin", "pamela",
    "scott", "nicole", "brandon", "emma",
)

LAST_NAMES: tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "wolf",
)

USERNAME_NOUNS: tuple[str, ...] = (
    "wolf", "tiger", "eagle", "hawk", "bear", "fox", "raven", "falcon",
    "dragon", "phoenix", "river", "mountain", "storm", "shadow", "spirit",
    "runner", "dreamer", "wanderer", "gardener", "baker", "reader",
    "walker", "knitter", "hiker", "fisher", "painter", "dancer", "singer",
    "mom", "dad", "grandma", "nana", "girl", "guy", "dude", "lady",
    "star", "moon", "sun", "cloud", "rose", "daisy", "lily", "willow",
    "pearl", "ruby", "jade", "amber", "sky", "ocean",
)

USERNAME_ADJECTIVES: tuple[str, ...] = (
    "happy", "sunny", "lucky", "crazy", "lazy", "sleepy", "grumpy",
    "silver", "golden", "blue", "red", "green", "purple", "wild", "quiet",
    "gentle", "brave", "silly", "sweet", "little", "big", "old", "young",
    "northern", "southern", "western", "eastern", "texas", "jersey",
    "cosmic", "mystic", "hopeful", "tired", "busy", "free",
)

US_LOCATIONS: tuple[str, ...] = (
    "california", "texas", "florida", "new york", "ohio", "georgia",
    "michigan", "virginia", "washington", "arizona", "colorado", "oregon",
    "illinois", "pennsylvania", "north carolina", "tennessee", "missouri",
    "minnesota", "wisconsin", "maryland", "indiana", "massachusetts",
    "kentucky", "oklahoma", "nevada", "iowa", "utah", "kansas", "arkansas",
    "alabama",
)


def sample_person_name(rng: np.random.Generator) -> tuple[str, str]:
    """Sample a (first, last) real-person name."""
    return (
        str(rng.choice(FIRST_NAMES)),
        str(rng.choice(LAST_NAMES)),
    )


def sample_username(
    rng: np.random.Generator,
    first: "str | None" = None,
    last: "str | None" = None,
    birth_year: "int | None" = None,
) -> str:
    """Sample a username, optionally derived from a real name.

    Patterns (mirroring the low→high entropy spectrum the linkage attack
    exploits): name+digits, initial+lastname+year, adjective+noun,
    adjective+noun+digits, noun+noun, and name-word blends.
    """
    first = first or str(rng.choice(FIRST_NAMES))
    last = last or str(rng.choice(LAST_NAMES))
    year = birth_year if birth_year is not None else int(rng.integers(1950, 2000))
    short_year = year % 100
    digits2 = int(rng.integers(10, 99))
    digits4 = int(rng.integers(1000, 9999))
    noun = str(rng.choice(USERNAME_NOUNS))
    adj = str(rng.choice(USERNAME_ADJECTIVES))

    pattern = rng.integers(0, 10)
    if pattern == 0:
        return f"{first}{short_year:02d}"
    if pattern == 1:
        return f"{first}{last}{digits2}"
    if pattern == 2:
        return f"{first[0]}{last}{digits4}"
    if pattern == 3:
        return f"{first}_{last}"
    if pattern == 4:
        return f"{adj}{noun}"
    if pattern == 5:
        return f"{adj}{noun}{digits2}"
    if pattern == 6:
        return f"{noun}{str(rng.choice(USERNAME_NOUNS))}{short_year:02d}"
    if pattern == 7:
        return f"{first}the{noun}"
    if pattern == 8:
        return f"{adj}_{first}{digits2}"
    return f"{noun}{digits4}"


def unique_usernames(
    rng: np.random.Generator, count: int, max_attempts_factor: int = 50
) -> list[str]:
    """Generate ``count`` distinct usernames.

    Collisions are resolved by appending digits; raises ``RuntimeError`` only
    if the namespace is pathologically exhausted.
    """
    seen: set[str] = set()
    out: list[str] = []
    attempts = 0
    max_attempts = max_attempts_factor * max(count, 1)
    while len(out) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not generate {count} unique usernames "
                f"after {attempts} attempts"
            )
        name = sample_username(rng)
        if name in seen:
            name = f"{name}{rng.integers(100, 999)}"
        if name in seen:
            continue
        seen.add(name)
        out.append(name)
    return out
