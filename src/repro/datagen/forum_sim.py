"""Forum simulation: users, boards, threads, and co-posting structure.

The simulator reproduces the structural regime the paper measures on the
real corpora: heavy-tailed posts-per-user (Fig 1), lognormal-ish post
lengths (Fig 2), a sparse correlation graph with low degrees (Fig 7), and
board-induced community structure on a disconnected graph (Fig 8).

Mechanics: every user gets a persistent style, a post budget drawn from a
truncated Zipf law, and one to three home boards.  Threads are then spawned
on boards (popularity-weighted); the thread starter and a geometric number
of responders are drawn from the board's members with remaining budget,
which yields the co-posting edges the UDA graph is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen import vocabulary as vocab
from repro.datagen.names import US_LOCATIONS, unique_usernames
from repro.datagen.styles import StyleProfile, sample_style
from repro.datagen.text_synth import PostSynthesizer
from repro.errors import ConfigError
from repro.forum.models import ForumDataset, Post, Thread, User
from repro.utils.rng import spawn_rngs
from repro.utils.stats import truncated_zipf_pmf


@dataclass(frozen=True)
class ForumConfig:
    """Parameters of one synthetic forum corpus.

    The defaults are neutral; the calibrated WebMD/HealthBoards parameter
    sets live in :mod:`repro.datagen.presets`.
    """

    name: str = "forum"
    n_users: int = 500
    posts_zipf_exponent: float = 2.0
    min_posts_per_user: int = 1
    max_posts_per_user: int = 400
    mean_post_words: float = 130.0
    boards: tuple = tuple(vocab.BOARDS)
    board_zipf_exponent: float = 1.1
    min_boards_per_user: int = 1
    max_boards_per_user: int = 3
    reply_geometric_p: float = 0.45
    max_thread_posts: int = 12
    style_distinctiveness: float = 0.35
    style_quirk_strength: float = 1.0
    style_mood_volatility: float = 0.0
    user_length_sigma: float = 0.25

    def validate(self) -> None:
        if self.n_users < 1:
            raise ConfigError(f"n_users must be >= 1, got {self.n_users}")
        if not 1 <= self.min_posts_per_user <= self.max_posts_per_user:
            raise ConfigError(
                "need 1 <= min_posts_per_user <= max_posts_per_user, got "
                f"{self.min_posts_per_user}..{self.max_posts_per_user}"
            )
        if not self.boards:
            raise ConfigError("at least one board is required")
        if not 1 <= self.min_boards_per_user <= self.max_boards_per_user:
            raise ConfigError("invalid boards_per_user range")
        if not 0.0 < self.reply_geometric_p <= 1.0:
            raise ConfigError(
                f"reply_geometric_p must be in (0, 1], got {self.reply_geometric_p}"
            )
        if self.mean_post_words <= 0:
            raise ConfigError("mean_post_words must be positive")


@dataclass
class GeneratedForum:
    """A generated corpus plus the hidden ground truth behind it."""

    dataset: ForumDataset
    styles: dict = field(default_factory=dict)
    home_boards: dict = field(default_factory=dict)


def generate_forum(
    config: ForumConfig, seed: "int | np.random.Generator | None" = None
) -> GeneratedForum:
    """Generate a forum corpus under ``config``.

    Determinism: a fixed ``seed`` reproduces users, styles, thread structure,
    and post text exactly.
    """
    config.validate()
    rng_names, rng_styles, rng_structure, rng_text = spawn_rngs(seed, 4)

    dataset = ForumDataset(config.name)
    usernames = unique_usernames(rng_names, config.n_users)
    user_ids = [f"{config.name}-u{i:06d}" for i in range(config.n_users)]
    for uid, username in zip(user_ids, usernames):
        profile = {
            "location": str(rng_names.choice(US_LOCATIONS)),
            "join_year": int(rng_names.integers(2005, 2015)),
        }
        dataset.add_user(User(user_id=uid, username=username, profile=profile))

    styles: dict[str, StyleProfile] = {}
    # -sigma^2/2 keeps the *mean* of user length habits on target
    length_mu = np.log(config.mean_post_words) - 0.5 * config.user_length_sigma**2
    for uid in user_ids:
        style = sample_style(
            rng_styles,
            mean_post_words=float(
                rng_styles.lognormal(length_mu, config.user_length_sigma)
            ),
            distinctiveness=config.style_distinctiveness,
            quirk_strength=config.style_quirk_strength,
            mood_volatility=config.style_mood_volatility,
        )
        styles[uid] = style

    # --- post budgets (truncated Zipf on [min, max])
    support = np.arange(
        config.min_posts_per_user, config.max_posts_per_user + 1, dtype=int
    )
    pmf = truncated_zipf_pmf(len(support), config.posts_zipf_exponent)
    budgets = {
        uid: int(rng_structure.choice(support, p=pmf)) for uid in user_ids
    }

    # --- board membership (popularity-weighted)
    board_pop = truncated_zipf_pmf(len(config.boards), config.board_zipf_exponent)
    home_boards: dict[str, tuple] = {}
    board_members: dict[str, list[str]] = {b: [] for b in config.boards}
    for uid in user_ids:
        k = int(
            rng_structure.integers(
                config.min_boards_per_user, config.max_boards_per_user + 1
            )
        )
        k = min(k, len(config.boards))
        picked = rng_structure.choice(
            len(config.boards), size=k, replace=False, p=board_pop
        )
        boards = tuple(config.boards[int(i)] for i in picked)
        home_boards[uid] = boards
        for b in boards:
            board_members[b].append(uid)

    # --- thread generation
    synthesizer = PostSynthesizer()
    remaining = dict(budgets)
    active_boards = [b for b in config.boards if board_members[b]]
    post_counter = 0
    thread_counter = 0
    clock = 0.0

    def board_weight(board: str) -> float:
        return float(sum(remaining[m] for m in board_members[board]))

    while active_boards:
        weights = np.array([board_weight(b) for b in active_boards])
        total = weights.sum()
        if total <= 0:
            break
        board = active_boards[int(rng_structure.choice(len(active_boards), p=weights / total))]
        members = [m for m in board_members[board] if remaining[m] > 0]
        if not members:
            active_boards.remove(board)
            continue

        member_weights = np.array([remaining[m] for m in members], dtype=float)
        member_weights /= member_weights.sum()
        starter = members[int(rng_structure.choice(len(members), p=member_weights))]

        n_replies = int(rng_structure.geometric(config.reply_geometric_p)) - 1
        n_replies = min(n_replies, config.max_thread_posts - 1)
        participants = [starter]
        others = [m for m in members if m != starter]
        if n_replies and others:
            other_weights = np.array([remaining[m] for m in others], dtype=float)
            other_weights /= other_weights.sum()
            take = min(n_replies, len(others))
            chosen = rng_structure.choice(
                len(others), size=take, replace=False, p=other_weights
            )
            participants.extend(others[int(i)] for i in chosen)

        topic_words = vocab.BOARDS.get(board, vocab.MEDICAL_NOUNS)
        topic = f"{topic_words[int(rng_structure.integers(0, len(topic_words)))]} question"
        thread_id = f"{config.name}-t{thread_counter:06d}"
        thread_counter += 1
        dataset.add_thread(
            Thread(thread_id=thread_id, board=board, topic=topic, starter_id=starter)
        )

        for uid in participants:
            text = synthesizer.generate_post(styles[uid], topic_words, rng_text)
            clock += float(rng_structure.exponential(1.0))
            dataset.add_post(
                Post(
                    post_id=f"{config.name}-p{post_counter:07d}",
                    user_id=uid,
                    thread_id=thread_id,
                    board=board,
                    text=text,
                    created_at=clock,
                )
            )
            post_counter += 1
            remaining[uid] -= 1

    return GeneratedForum(dataset=dataset, styles=styles, home_boards=home_boards)
