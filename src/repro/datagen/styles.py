"""Per-user writing-style profiles.

A :class:`StyleProfile` is the persistent "writeprint" of one synthetic
user: which intensifiers/hedges/connectives they favour, their punctuation
and capitalisation quirks, their habitual misspellings, and their length
habits.  The profiles are the ground truth the stylometric attack tries to
recover — the paper's premise ("users have distinctive writing styles") is
implemented literally.

Choice-point preferences are sampled from sparse Dirichlet distributions so
that different users concentrate on different alternatives, matching the
empirical observation that writers reuse a small personal inventory of
discourse markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen import vocabulary as vocab
from repro.text.lexicons import MISSPELLINGS

#: correct word -> misspelled variants, restricted to words the synthesiser
#: can actually emit (function words + our vocabulary pools).
_EMITTABLE_WORDS: frozenset[str] = frozenset(
    w
    for pool in (
        vocab.MEDICAL_NOUNS,
        vocab.GENERAL_NOUNS,
        vocab.VERBS,
        vocab.ADJECTIVES,
        vocab.INTENSIFIERS,
        vocab.HEDGES,
        vocab.CONNECTIVES,
        vocab.OPENERS,
        vocab.DURATIONS,
        vocab.DOSES,
    )
    for phrase in pool
    for w in phrase.split()
) | frozenset(w for words in vocab.BOARDS.values() for w in words)


def _build_reverse_misspellings() -> dict[str, tuple[str, ...]]:
    from repro.text.lexicons import FUNCTION_WORDS

    emittable = _EMITTABLE_WORDS | frozenset(FUNCTION_WORDS)
    table: dict[str, list[str]] = {}
    for wrong, correct in MISSPELLINGS.items():
        if correct in emittable:
            table.setdefault(correct, []).append(wrong)
    return {k: tuple(v) for k, v in table.items()}


REVERSE_MISSPELLINGS: dict[str, tuple[str, ...]] = _build_reverse_misspellings()


@dataclass
class StyleProfile:
    """All persistent stylistic parameters of one synthetic author."""

    # --- weighted choice points (index-aligned with the vocabulary pools)
    intensifier_weights: np.ndarray
    hedge_weights: np.ndarray
    connective_weights: np.ndarray
    opener_weights: np.ndarray
    greeting_weights: np.ndarray
    closing_weights: np.ndarray
    filler_weights: np.ndarray
    emoticon_weights: np.ndarray
    sentence_kind_weights: np.ndarray

    # --- event probabilities
    greeting_prob: float
    closing_prob: float
    opener_prob: float
    filler_prob: float
    emoticon_prob: float
    exclaim_prob: float
    multi_exclaim_prob: float
    ellipsis_prob: float
    lowercase_i_prob: float
    no_capitalization_prob: float
    allcaps_emphasis_prob: float
    duration_prob: float
    dose_prob: float
    paragraph_break_prob: float

    # --- misspelling habit
    misspell_rate: float
    misspell_map: dict = field(default_factory=dict)

    # --- within-user drift: per-post blending of choice weights toward
    # uniform (0 = perfectly consistent author, 1 = every post may be
    # written in a nearly generic voice)
    mood_volatility: float = 0.0

    # --- length habits
    mean_sentence_words: float = 12.0
    mean_post_words: float = 120.0
    post_words_sigma: float = 0.45

    def scaled_to_length(self, mean_post_words: float) -> "StyleProfile":
        """Copy of this profile with a different target post length."""
        from dataclasses import replace

        return replace(self, mean_post_words=mean_post_words)


def _dirichlet(rng: np.random.Generator, size: int, alpha: float) -> np.ndarray:
    return rng.dirichlet(np.full(size, alpha))


def sample_style(
    rng: np.random.Generator,
    mean_post_words: float = 120.0,
    distinctiveness: float = 0.35,
    quirk_strength: float = 1.0,
    mood_volatility: float = 0.0,
) -> StyleProfile:
    """Sample a fresh author style.

    ``distinctiveness`` is the Dirichlet concentration for choice points:
    smaller values produce users concentrated on fewer personal alternatives
    (stronger stylometric signal); values >> 1 make all users near-uniform
    (an adversarial / obfuscated regime usable for ablations).

    ``quirk_strength`` in [0, 1] shrinks the surface-quirk probabilities
    (misspellings, case habits, punctuation habits) toward their population
    means — at 0 every author shares the same quirk rates, so only
    word-choice preferences separate them.  The paper's hard regimes (short
    posts, little training data) are reproduced with weak quirks.
    """
    if distinctiveness <= 0:
        raise ValueError(f"distinctiveness must be positive, got {distinctiveness}")
    if not 0.0 <= quirk_strength <= 1.0:
        raise ValueError(f"quirk_strength must be in [0, 1], got {quirk_strength}")
    if not 0.0 <= mood_volatility <= 1.0:
        raise ValueError(f"mood_volatility must be in [0, 1], got {mood_volatility}")
    a = distinctiveness

    def shrink(value: float, population_mean: float) -> float:
        return population_mean + quirk_strength * (value - population_mean)

    n_misspell = int(rng.integers(3, 9))
    corrects = list(REVERSE_MISSPELLINGS)
    chosen = rng.choice(len(corrects), size=min(n_misspell, len(corrects)), replace=False)
    misspell_map = {}
    for idx in chosen:
        correct = corrects[int(idx)]
        variants = REVERSE_MISSPELLINGS[correct]
        misspell_map[correct] = str(variants[int(rng.integers(0, len(variants)))])

    return StyleProfile(
        intensifier_weights=_dirichlet(rng, len(vocab.INTENSIFIERS), a),
        hedge_weights=_dirichlet(rng, len(vocab.HEDGES), a),
        connective_weights=_dirichlet(rng, len(vocab.CONNECTIVES), a),
        opener_weights=_dirichlet(rng, len(vocab.OPENERS), a),
        greeting_weights=_dirichlet(rng, len(vocab.GREETINGS), a),
        closing_weights=_dirichlet(rng, len(vocab.CLOSINGS), a),
        filler_weights=_dirichlet(rng, len(vocab.FILLERS), a),
        emoticon_weights=_dirichlet(rng, len(vocab.EMOTICONS), a),
        sentence_kind_weights=rng.dirichlet(np.full(6, 1.2)),
        greeting_prob=float(rng.beta(2, 3)),
        closing_prob=float(rng.beta(2, 3)),
        opener_prob=float(rng.beta(2, 4)),
        filler_prob=shrink(float(rng.beta(1.5, 8)), 0.158),
        emoticon_prob=shrink(float(rng.beta(1.2, 10)), 0.107),
        exclaim_prob=shrink(float(rng.beta(1.5, 6)), 0.2),
        multi_exclaim_prob=shrink(float(rng.beta(1.2, 12)), 0.091),
        ellipsis_prob=shrink(float(rng.beta(1.5, 8)), 0.158),
        lowercase_i_prob=shrink(
            float(rng.choice([0.0, 0.05, 0.9], p=[0.55, 0.15, 0.3])), 0.278
        ),
        no_capitalization_prob=shrink(
            float(rng.choice([0.0, 0.15, 0.95], p=[0.6, 0.2, 0.2])), 0.22
        ),
        allcaps_emphasis_prob=shrink(float(rng.beta(1.2, 15)), 0.074),
        duration_prob=float(rng.beta(3, 5)),
        dose_prob=float(rng.beta(2, 6)),
        paragraph_break_prob=float(rng.beta(1.5, 8)),
        misspell_rate=shrink(float(rng.beta(1.6, 3.0)), 0.348),
        misspell_map=misspell_map,
        mood_volatility=mood_volatility,
        mean_sentence_words=float(rng.normal(12.0, 2.5)).__abs__() + 6.0,
        mean_post_words=mean_post_words,
        post_words_sigma=float(rng.uniform(0.3, 0.6)),
    )
