"""Post text synthesis: turn a style profile + board topic into forum prose.

Sentences are assembled from six generative "kinds" (symptom report,
question, advice, experience, lab detail, feeling) whose slot fillers are
drawn through the author's weighted choice points.  Style transforms then
apply the author's surface quirks — capitalisation habits, habitual
misspellings, exclamation/ellipsis habits, emoticons — so that every
stylometric category in Table I carries author signal.
"""

from __future__ import annotations

import numpy as np

from repro.datagen import vocabulary as vocab
from repro.datagen.styles import StyleProfile


def _pick(rng: np.random.Generator, pool: tuple, weights: np.ndarray) -> str:
    return str(pool[int(rng.choice(len(pool), p=weights))])


def _uniform(rng: np.random.Generator, pool: tuple) -> str:
    return str(pool[int(rng.integers(0, len(pool)))])


class PostSynthesizer:
    """Stateless generator of post text; all randomness flows through ``rng``."""

    def generate_post(
        self,
        style: StyleProfile,
        topic_words: tuple,
        rng: np.random.Generator,
        target_words: "int | None" = None,
    ) -> str:
        """Generate one post for an author about a board topic.

        ``target_words`` overrides the author's lognormal length habit (used
        by experiments needing fixed-size posts).
        """
        if target_words is None:
            # mu is shifted by -sigma^2/2 so the lognormal's *mean* (not
            # median) hits the author's habitual length.
            sigma = style.post_words_sigma
            mu = np.log(style.mean_post_words) - 0.5 * sigma * sigma
            target_words = max(10, int(rng.lognormal(mu, sigma)))
            # the sentence loop overshoots by about half a sentence
            target_words = max(10, target_words - int(style.mean_sentence_words // 2))

        if style.mood_volatility > 0.0:
            style = self._mood_shifted(style, rng)

        pieces: list[str] = []
        n_words = 0
        if rng.random() < style.greeting_prob:
            greeting = _pick(rng, vocab.GREETINGS, style.greeting_weights)
            pieces.append(self._finish_sentence(greeting, style, rng, terminal=","))
            n_words += len(greeting.split())

        while n_words < target_words:
            sentence = self._make_sentence(style, topic_words, rng)
            n_words += len(sentence.split())
            pieces.append(sentence)
            if rng.random() < style.paragraph_break_prob and n_words < target_words:
                pieces.append("\n\n")

        if rng.random() < style.closing_prob:
            closing = _pick(rng, vocab.CLOSINGS, style.closing_weights)
            pieces.append(self._finish_sentence(closing, style, rng))

        text = ""
        for piece in pieces:
            if piece == "\n\n":
                text = text.rstrip() + "\n\n"
            elif text.endswith("\n\n") or not text:
                text += piece
            else:
                text += " " + piece
        return text.strip()

    def _mood_shifted(
        self, style: StyleProfile, rng: np.random.Generator
    ) -> StyleProfile:
        """Per-post drift: blend the author's choice weights toward uniform.

        The blend coefficient is redrawn for every post, so individual posts
        carry a noisier version of the author's voice — aggregate statistics
        over many posts still converge to the true preferences.  This is the
        knob that reproduces the paper's hard regime where post-level
        classification fails but user-level aggregation succeeds.
        """
        from dataclasses import replace

        m = float(rng.beta(2, 2)) * style.mood_volatility

        def blend(weights: np.ndarray) -> np.ndarray:
            uniform = np.full_like(weights, 1.0 / len(weights))
            return (1.0 - m) * weights + m * uniform

        return replace(
            style,
            intensifier_weights=blend(style.intensifier_weights),
            hedge_weights=blend(style.hedge_weights),
            connective_weights=blend(style.connective_weights),
            opener_weights=blend(style.opener_weights),
            filler_weights=blend(style.filler_weights),
            emoticon_weights=blend(style.emoticon_weights),
            sentence_kind_weights=blend(style.sentence_kind_weights),
            misspell_rate=(1.0 - m) * style.misspell_rate + m * 0.348,
        )

    # --- sentence kinds -------------------------------------------------

    def _make_sentence(
        self, style: StyleProfile, topic_words: tuple, rng: np.random.Generator
    ) -> str:
        kind = int(rng.choice(6, p=style.sentence_kind_weights))
        builders = (
            self._symptom_sentence,
            self._question_sentence,
            self._advice_sentence,
            self._experience_sentence,
            self._detail_sentence,
            self._feeling_sentence,
        )
        body, is_question = builders[kind](style, topic_words, rng)
        if rng.random() < style.opener_prob:
            body = f"{_pick(rng, vocab.OPENERS, style.opener_weights)} {body}"
        return self._finish_sentence(body, style, rng, question=is_question)

    def _symptom_sentence(self, style, topic_words, rng) -> tuple[str, bool]:
        topic = _uniform(rng, topic_words)
        adj = _uniform(rng, vocab.ADJECTIVES)
        intensity = _pick(rng, vocab.INTENSIFIERS, style.intensifier_weights)
        verb_phrase = _uniform(
            rng,
            (
                "i have been having", "i have", "i keep getting", "i am dealing with",
                "i have been experiencing", "i get", "i am having", "i suffer from",
            ),
        )
        parts = [verb_phrase, intensity, adj, topic]
        if rng.random() < style.duration_prob:
            parts.append(_uniform(rng, vocab.DURATIONS))
        return " ".join(parts), False

    def _question_sentence(self, style, topic_words, rng) -> tuple[str, bool]:
        topic = _uniform(rng, topic_words)
        other = _uniform(rng, vocab.MEDICAL_NOUNS)
        template = _uniform(
            rng,
            (
                f"has anyone else tried {topic}",
                f"does anyone know if {topic} can cause {other}",
                f"should i ask my doctor about {topic}",
                f"is it normal for {topic} to get worse at night",
                f"has anyone had problems with {topic}",
                f"what do you all do about {topic}",
                f"could this be related to my {topic}",
            ),
        )
        return template, True

    def _advice_sentence(self, style, topic_words, rng) -> tuple[str, bool]:
        topic = _uniform(rng, topic_words)
        hedge = _pick(rng, vocab.HEDGES, style.hedge_weights)
        template = _uniform(
            rng,
            (
                f"{hedge} you should ask about {topic}",
                f"my doctor told me to watch the {topic}",
                f"{hedge} it is worth getting the {topic} checked",
                f"the specialist said the {topic} should settle down",
                f"they want me to come back for more {_uniform(rng, vocab.MEDICAL_NOUNS)}",
            ),
        )
        if rng.random() < style.dose_prob:
            template += f" and i am on {_uniform(rng, vocab.DOSES)} now"
        return template, False

    def _experience_sentence(self, style, topic_words, rng) -> tuple[str, bool]:
        topic = _uniform(rng, topic_words)
        connective = _pick(rng, vocab.CONNECTIVES, style.connective_weights)
        first = _uniform(
            rng,
            (
                f"i started {topic} {_uniform(rng, vocab.DURATIONS)}",
                f"i was put on {topic} by my doctor",
                f"i tried {topic} last year",
                f"my {_uniform(rng, vocab.GENERAL_NOUNS)} convinced me to try {topic}",
            ),
        )
        second = _uniform(
            rng,
            (
                "it helped a lot",
                "it did nothing for me",
                "the side effects were rough",
                "i feel a little better now",
                "things slowly improved",
                "i had to stop after a while",
            ),
        )
        return f"{first} {connective} {second}", False

    def _detail_sentence(self, style, topic_words, rng) -> tuple[str, bool]:
        topic = _uniform(rng, topic_words)
        number = int(rng.integers(2, 500))
        template = _uniform(
            rng,
            (
                f"my {topic} number was {number} at the last visit",
                f"the {topic} went from {number} to {int(rng.integers(2, 900))} in {int(rng.integers(2, 12))} months",
                f"my levels are around {number} which the doctor says is {_uniform(rng, ('normal', 'high', 'low', 'borderline'))}",
                f"the {topic} test came back at {number}",
            ),
        )
        return template, False

    def _feeling_sentence(self, style, topic_words, rng) -> tuple[str, bool]:
        intensity = _pick(rng, vocab.INTENSIFIERS, style.intensifier_weights)
        adj = _uniform(rng, vocab.ADJECTIVES)
        connective = _pick(rng, vocab.CONNECTIVES, style.connective_weights)
        tail = _uniform(
            rng,
            (
                "i hope it gets better soon",
                "i am trying to stay positive",
                "i just want some answers",
                "it is hard to explain to my family",
                "i am scared to make it worse",
                "nobody seems to understand",
            ),
        )
        return f"i feel {intensity} {adj} {connective} {tail}", False

    # --- surface transforms ----------------------------------------------

    def _finish_sentence(
        self,
        body: str,
        style: StyleProfile,
        rng: np.random.Generator,
        question: bool = False,
        terminal: "str | None" = None,
    ) -> str:
        words = body.split()
        words = [self._style_word(w, style, rng) for w in words]

        if terminal is None:
            if question:
                terminal = "?"
            elif rng.random() < style.ellipsis_prob:
                terminal = "..."
            elif rng.random() < style.exclaim_prob:
                terminal = "!!!" if rng.random() < style.multi_exclaim_prob else "!"
            else:
                terminal = "."

        sentence = " ".join(words) + terminal
        if rng.random() < style.filler_prob:
            sentence += f" {_pick(rng, vocab.FILLERS, style.filler_weights)}"
        if rng.random() < style.emoticon_prob:
            sentence += f" {_pick(rng, vocab.EMOTICONS, style.emoticon_weights)}"

        if rng.random() >= style.no_capitalization_prob:
            sentence = sentence[0].upper() + sentence[1:]
        return sentence

    def _style_word(
        self, word: str, style: StyleProfile, rng: np.random.Generator
    ) -> str:
        if word in style.misspell_map and rng.random() < style.misspell_rate:
            word = style.misspell_map[word]
        if word == "i" and rng.random() >= style.lowercase_i_prob:
            word = "I"
        elif (
            len(word) > 3
            and word.isalpha()
            and rng.random() < style.allcaps_emphasis_prob
        ):
            word = word.upper()
        return word
