"""Calibrated corpus presets mirroring the paper's two datasets.

Calibration targets (paper, Section II-A):

==================  ==========  ==============
statistic           WebMD       HealthBoards
==================  ==========  ==============
users               89,393      388,398
posts/user (mean)   5.66        12.06
users with <5 posts 87.3%       75.4%
mean post length    127.59 w    147.24 w
==================  ==========  ==============

The presets keep the *ratios and shapes* at configurable scale: a truncated
Zipf exponent of 2.0 puts ≈87% of users under 5 posts (WebMD), 1.62 puts
≈75% under 5 (HealthBoards); user counts default to a 1:4.3 scale-down of
the originals.  Absolute user counts are parameters because the attack's
experiments sweep corpus size.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.forum_sim import ForumConfig, GeneratedForum, generate_forum

#: Scale ratio between the paper's two corpora (388,398 / 89,393).
HB_TO_WEBMD_USER_RATIO = 4.34


def webmd_like(
    n_users: int = 1200,
    seed: "int | np.random.Generator | None" = 0,
    **overrides,
) -> GeneratedForum:
    """A WebMD-shaped corpus: sparse posting, ~128-word posts."""
    config = ForumConfig(
        name="webmd",
        n_users=n_users,
        posts_zipf_exponent=2.0,
        mean_post_words=127.59,
        reply_geometric_p=0.45,
        **overrides,
    )
    return generate_forum(config, seed=seed)


def healthboards_like(
    n_users: int = 3000,
    seed: "int | np.random.Generator | None" = 1,
    **overrides,
) -> GeneratedForum:
    """A HealthBoards-shaped corpus: heavier tails, ~147-word posts."""
    config = ForumConfig(
        name="healthboards",
        n_users=n_users,
        posts_zipf_exponent=1.62,
        mean_post_words=147.24,
        reply_geometric_p=0.40,
        **overrides,
    )
    return generate_forum(config, seed=seed)
