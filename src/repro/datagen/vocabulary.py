"""Topic vocabulary for the synthetic health forums.

Boards mirror the condition-specific message boards of WebMD/HealthBoards
("more than 200 message boards on various diseases, conditions, and health
topics").  Each board carries nouns (conditions, symptoms, drugs) that seed
thread topics and post content; shared pools carry the generic medical and
everyday words every user draws from.
"""

from __future__ import annotations

#: Condition boards: name -> topical nouns used in that board's threads.
BOARDS: dict[str, tuple[str, ...]] = {
    "anxiety": (
        "anxiety", "panic", "attack", "worry", "stress", "fear", "nerves",
        "ativan", "xanax", "therapy", "breathing", "heartbeat", "dread",
        "counselor", "ssri", "zoloft", "trigger", "episode", "tension",
        "insomnia", "restlessness", "palpitations", "agoraphobia",
    ),
    "depression": (
        "depression", "sadness", "mood", "fatigue", "prozac", "lexapro",
        "therapy", "counseling", "motivation", "sleep", "appetite",
        "wellbutrin", "isolation", "crying", "hopelessness", "energy",
        "psychiatrist", "dose", "serotonin", "relapse", "numbness",
    ),
    "diabetes": (
        "diabetes", "sugar", "glucose", "insulin", "metformin", "a1c",
        "carbs", "diet", "pancreas", "meter", "readings", "neuropathy",
        "thirst", "pump", "injection", "type", "endocrinologist", "fasting",
        "snack", "lancet", "ketones", "hypoglycemia",
    ),
    "hepatitis": (
        "hepatitis", "liver", "viral", "load", "genotype", "interferon",
        "ribavirin", "enzymes", "alt", "ast", "biopsy", "cirrhosis",
        "treatment", "strain", "fibrosis", "jaundice", "harvoni",
        "transplant", "bilirubin", "screening", "detox", "methadone",
    ),
    "back-pain": (
        "back", "spine", "disc", "sciatica", "nerve", "vertebrae", "mri",
        "chiropractor", "physical", "therapy", "ibuprofen", "stretching",
        "posture", "herniated", "fusion", "epidural", "lumbar", "tailbone",
        "spasm", "numbness", "cortisone", "surgery",
    ),
    "migraine": (
        "migraine", "headache", "aura", "trigger", "imitrex", "topamax",
        "light", "nausea", "sensitivity", "caffeine", "botox", "tension",
        "cluster", "throbbing", "vision", "neurologist", "preventive",
        "magnesium", "excedrin", "pressure", "temples",
    ),
    "allergy": (
        "allergy", "pollen", "sneezing", "histamine", "claritin", "zyrtec",
        "rash", "hives", "sinus", "dust", "asthma", "wheezing", "epipen",
        "peanut", "gluten", "lactose", "shots", "immunology", "congestion",
        "eyes", "benadryl", "mold",
    ),
    "asthma": (
        "asthma", "inhaler", "albuterol", "wheezing", "breathing", "lungs",
        "attack", "steroid", "nebulizer", "peak", "flow", "pulmonologist",
        "singulair", "advair", "cough", "chest", "tightness", "exercise",
        "spirometry", "oxygen", "flare",
    ),
    "heart": (
        "heart", "blood", "pressure", "cholesterol", "statin", "lipitor",
        "palpitations", "ekg", "stent", "cardiologist", "arrhythmia",
        "beta", "blocker", "aspirin", "stress", "angina", "valve",
        "fibrillation", "echo", "plaque", "bypass", "rhythm",
    ),
    "thyroid": (
        "thyroid", "hypothyroid", "synthroid", "tsh", "levothyroxine",
        "hashimoto", "goiter", "hormone", "metabolism", "nodule", "graves",
        "antibodies", "t3", "t4", "endocrinologist", "weight", "hair",
        "fatigue", "biopsy", "ultrasound", "iodine",
    ),
    "digestive": (
        "ibs", "stomach", "bloating", "acid", "reflux", "gerd", "nausea",
        "colon", "gluten", "probiotics", "fiber", "colonoscopy", "cramps",
        "gallbladder", "ulcer", "nexium", "constipation", "diarrhea",
        "endoscopy", "intestine", "crohns", "celiac",
    ),
    "pregnancy": (
        "pregnancy", "trimester", "ultrasound", "morning", "sickness",
        "obgyn", "folic", "contractions", "midwife", "prenatal", "nausea",
        "cramping", "spotting", "cycle", "ovulation", "fertility",
        "hormones", "labor", "epidural", "heartburn", "swelling",
    ),
    "arthritis": (
        "arthritis", "joints", "rheumatoid", "inflammation", "knees",
        "stiffness", "methotrexate", "humira", "flare", "cartilage",
        "osteoarthritis", "swelling", "prednisone", "rheumatologist",
        "hips", "fingers", "mobility", "naproxen", "lupus", "gout",
        "remicade",
    ),
    "skin": (
        "skin", "eczema", "psoriasis", "rash", "acne", "dermatologist",
        "itching", "cream", "steroid", "moisturizer", "hives", "biopsy",
        "mole", "rosacea", "accutane", "breakout", "scalp", "patches",
        "lotion", "sunscreen", "flaking",
    ),
    "sleep": (
        "sleep", "insomnia", "apnea", "cpap", "melatonin", "ambien",
        "snoring", "fatigue", "dreams", "rem", "restless", "legs",
        "naps", "caffeine", "bedtime", "drowsiness", "study", "machine",
        "mask", "trazodone", "nightmares",
    ),
    "cancer": (
        "cancer", "tumor", "chemo", "radiation", "oncologist", "biopsy",
        "remission", "scan", "lymph", "nodes", "marker", "staging",
        "mastectomy", "melanoma", "prostate", "screening", "cells",
        "port", "infusion", "recurrence", "survivor",
    ),
}

#: Generic medical nouns usable on any board.
MEDICAL_NOUNS: tuple[str, ...] = (
    "doctor", "symptoms", "medication", "meds", "dose", "appointment",
    "blood", "test", "results", "pain", "side", "effects", "diagnosis",
    "prescription", "specialist", "pharmacy", "insurance", "hospital",
    "clinic", "treatment", "condition", "surgery", "recovery", "checkup",
    "labs", "referral", "pill", "tablet", "vitamins", "supplement",
)

#: Everyday nouns for non-medical clauses.
GENERAL_NOUNS: tuple[str, ...] = (
    "week", "month", "year", "day", "night", "morning", "husband", "wife",
    "mom", "dad", "kids", "work", "job", "house", "family", "friend",
    "weekend", "body", "head", "life", "time", "problem", "question",
    "experience", "story", "advice", "support", "group", "post", "thread",
)

#: State/experience verbs (base forms; synthesiser conjugates crudely).
VERBS: tuple[str, ...] = (
    "have", "feel", "get", "take", "try", "start", "stop", "notice",
    "experience", "suffer", "deal", "struggle", "manage", "handle",
    "wonder", "think", "know", "hope", "worry", "hurt", "ache", "help",
    "work", "happen", "change", "improve", "worsen", "continue",
)

#: Adjectives for symptoms and feelings.
ADJECTIVES: tuple[str, ...] = (
    "bad", "terrible", "awful", "horrible", "severe", "mild", "constant",
    "chronic", "sharp", "dull", "weird", "strange", "scary", "worried",
    "exhausted", "tired", "dizzy", "nauseous", "sick", "sore", "swollen",
    "better", "worse", "normal", "high", "low", "new", "old", "frequent",
    "occasional", "intense", "unbearable", "manageable",
)

#: Intensifier alternatives — a per-user weighted choice point.
INTENSIFIERS: tuple[str, ...] = (
    "very", "really", "so", "extremely", "quite", "pretty", "incredibly",
    "super", "terribly", "awfully",
)

#: Hedge alternatives — a per-user weighted choice point.
HEDGES: tuple[str, ...] = (
    "maybe", "perhaps", "probably", "possibly", "i guess", "i think",
    "i suppose", "it seems like", "apparently", "honestly",
)

#: Connective alternatives — a per-user weighted choice point.
CONNECTIVES: tuple[str, ...] = (
    "but", "however", "though", "although", "still", "yet",
    "on the other hand", "that said", "even so", "anyway",
)

#: Sentence openers (discourse markers) — per-user weighted choice point.
OPENERS: tuple[str, ...] = (
    "well", "so", "anyway", "basically", "honestly", "ok so", "look",
    "listen", "first of all", "to be honest", "lately", "recently",
    "for a while now", "these days",
)

#: Greeting alternatives for post openings.
GREETINGS: tuple[str, ...] = (
    "hi everyone", "hello all", "hey guys", "hi all", "hello everyone",
    "hey there", "hi", "hello", "greetings", "good morning all",
)

#: Closing alternatives for post endings.
CLOSINGS: tuple[str, ...] = (
    "thanks in advance", "any advice appreciated", "thanks for reading",
    "please help", "god bless", "take care", "thanks so much",
    "hope someone can help", "sorry for the long post", "thanks all",
)

#: Filler interjections users sprinkle mid-post.
FILLERS: tuple[str, ...] = (
    "lol", "ugh", "sigh", "yikes", "oh well", "go figure", "who knows",
    "fingers crossed", "believe me", "trust me",
)

#: Time/duration phrases (inject digits — the digit-frequency features).
DURATIONS: tuple[str, ...] = (
    "for 2 weeks", "for 3 days", "for about a month", "for 6 months",
    "since last year", "for 10 days", "for almost 2 years", "since 2013",
    "for the past 5 weeks", "on and off for 4 months", "for 48 hours",
    "every 3 or 4 days", "since i was 25", "for over a decade",
)

#: Dose phrases (more digits, medical flavour).
DOSES: tuple[str, ...] = (
    "10 mg", "20 mg", "25 mg", "50 mg", "75 mg", "100 mg", "150 mg",
    "200 mg", "5 mg twice a day", "half a tablet", "2 pills a day",
    "one 40 mg capsule",
)

#: Emoticons / symbol quirks (special-character features).
EMOTICONS: tuple[str, ...] = (
    ":)", ":(", ":/", ";)", ":-)", "<3", "^^", "(!)", "*sigh*", "~",
)
