"""Synthetic health-forum corpus generator.

Stands in for the paper's scraped WebMD / HealthBoards crawls (see DESIGN.md
for the substitution argument).  The generator produces users with
persistent, distinguishable writing styles posting in condition-specific
boards, calibrated to the corpus statistics the paper publishes (posts/user
CDF, post length distribution, correlation-graph sparsity).
"""

from repro.datagen.forum_sim import ForumConfig, generate_forum
from repro.datagen.presets import healthboards_like, webmd_like
from repro.datagen.styles import StyleProfile, sample_style
from repro.datagen.text_synth import PostSynthesizer

__all__ = [
    "ForumConfig",
    "PostSynthesizer",
    "StyleProfile",
    "generate_forum",
    "healthboards_like",
    "sample_style",
    "webmd_like",
]
