"""Auxiliary / anonymized dataset construction (Section V methodology).

Closed world: each user's posts are partitioned, a fraction into the
auxiliary data Δ2 (identities kept) and the rest into the anonymized data Δ1
(identities replaced by random pseudonyms) — so every anonymized user has a
true mapping in Δ2.

Open world: two equal-size datasets share an overlap ratio ``x/(x+y)`` where
``x + 2y = n`` (the paper's footnote 10); overlapping users have half their
posts on each side, exclusive users appear on only one side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError, EmptyDatasetError
from repro.forum.models import ForumDataset, Post, User
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class GroundTruth:
    """Pseudonym -> original-user mapping; ``None`` means no true mapping."""

    mapping: dict

    def true_match(self, anon_id: str) -> "str | None":
        return self.mapping.get(anon_id)

    @property
    def overlapping_ids(self) -> list[str]:
        """Anonymized ids that do have a true mapping in the auxiliary data."""
        return [a for a, v in self.mapping.items() if v is not None]

    @property
    def non_overlapping_ids(self) -> list[str]:
        return [a for a, v in self.mapping.items() if v is None]

    def is_correct(self, anon_id: str, predicted: "str | None") -> bool:
        """Whether a DA decision (user or ⊥=None) matches the ground truth."""
        return self.mapping.get(anon_id) == predicted


@dataclass(frozen=True)
class SplitResult:
    """The outcome of a split: Δ2 (auxiliary), Δ1 (anonymized), and truth."""

    auxiliary: ForumDataset
    anonymized: ForumDataset
    truth: GroundTruth


def _build_side(
    source: ForumDataset,
    name: str,
    user_posts: dict,
    pseudonyms: "dict | None" = None,
) -> ForumDataset:
    """Assemble one side of a split from ``user_id -> [Post]``.

    When ``pseudonyms`` is given, user ids are replaced and usernames/profiles
    stripped (that is what anonymization removes).
    """
    out = ForumDataset(name)
    for uid in user_posts:
        if pseudonyms is None:
            out.add_user(source.user(uid))
        else:
            pseudo = pseudonyms[uid]
            out.add_user(User(user_id=pseudo, username=pseudo, profile={}))
    thread_ids = {p.thread_id for posts in user_posts.values() for p in posts}
    for tid in thread_ids:
        thread = source.thread(tid)
        if pseudonyms is not None:
            starter = pseudonyms.get(thread.starter_id, "unknown")
            thread = replace(thread, starter_id=starter)
        out.add_thread(thread)
    for uid, posts in user_posts.items():
        for post in posts:
            if pseudonyms is not None:
                post = replace(post, user_id=pseudonyms[uid])
            out.add_post(post)
    return out


def closed_world_split(
    dataset: ForumDataset,
    aux_fraction: float = 0.5,
    seed: "int | np.random.Generator | None" = None,
) -> SplitResult:
    """Partition each user's posts into auxiliary and anonymized sides.

    ``aux_fraction`` of every user's posts (rounded up, so the auxiliary side
    always trains on at least one post) go to Δ2; the remainder to Δ1 under a
    fresh pseudonym.  Users left with zero anonymized posts simply do not
    appear in Δ1 — matching the paper's setup where Δ1 is 10–50% of the data.
    """
    if not 0.0 < aux_fraction < 1.0:
        raise ConfigError(f"aux_fraction must be in (0, 1), got {aux_fraction}")
    if dataset.n_users == 0:
        raise EmptyDatasetError("cannot split an empty dataset")
    rng = derive_rng(seed)

    aux_posts: dict[str, list[Post]] = {}
    anon_posts: dict[str, list[Post]] = {}
    for uid in dataset.user_ids():
        posts = dataset.posts_of(uid)
        if not posts:
            continue
        order = rng.permutation(len(posts))
        n_aux = math.ceil(aux_fraction * len(posts))
        aux_posts[uid] = [posts[i] for i in order[:n_aux]]
        rest = [posts[i] for i in order[n_aux:]]
        if rest:
            anon_posts[uid] = rest

    anon_ids = list(anon_posts)
    pseudo_order = rng.permutation(len(anon_ids))
    pseudonyms = {
        uid: f"anon_{pseudo_order[i]:06d}" for i, uid in enumerate(anon_ids)
    }

    auxiliary = _build_side(dataset, f"{dataset.name}-aux", aux_posts)
    anonymized = _build_side(
        dataset, f"{dataset.name}-anon", anon_posts, pseudonyms
    )
    truth = GroundTruth({pseudonyms[uid]: uid for uid in anon_ids})
    return SplitResult(auxiliary, anonymized, truth)


def open_world_split(
    dataset: ForumDataset,
    overlap_ratio: float = 0.5,
    seed: "int | np.random.Generator | None" = None,
) -> SplitResult:
    """Build equal-size auxiliary/anonymized datasets with a user overlap.

    Solves ``x + 2y = n`` with ``x/(x+y) = overlap_ratio`` (paper footnote
    10): ``x`` overlapping users contribute half their posts to each side,
    and two disjoint groups of ``y`` exclusive users contribute all their
    posts to one side only.  Overlapping users are drawn from those with at
    least two posts so both halves are non-empty.
    """
    if not 0.0 < overlap_ratio <= 1.0:
        raise ConfigError(f"overlap_ratio must be in (0, 1], got {overlap_ratio}")
    rng = derive_rng(seed)

    active = [uid for uid in dataset.user_ids() if dataset.posts_of(uid)]
    n = len(active)
    if n < 2:
        raise EmptyDatasetError("open-world split needs at least two active users")
    x = int(round(overlap_ratio * n / (2.0 - overlap_ratio)))
    x = max(1, min(x, n))

    splittable = [uid for uid in active if len(dataset.posts_of(uid)) >= 2]
    if not splittable:
        raise ConfigError("open-world split needs at least one user with >=2 posts")
    # Heavy-tailed corpora may not have enough multi-post users for the
    # requested ratio (87% of WebMD users have <5 posts); cap the overlap at
    # what is achievable — the achieved ratio is visible in the ground truth.
    x = min(x, len(splittable))
    y = (n - x) // 2
    overlap = list(rng.choice(splittable, size=x, replace=False))
    remaining = [uid for uid in active if uid not in set(overlap)]
    rng.shuffle(remaining)
    aux_only = remaining[:y]
    anon_only = remaining[y : 2 * y]

    aux_posts: dict[str, list[Post]] = {}
    anon_posts: dict[str, list[Post]] = {}
    for uid in overlap:
        posts = dataset.posts_of(uid)
        order = rng.permutation(len(posts))
        half = len(posts) // 2
        # auxiliary gets the ceil-half so it always has training data
        aux_posts[uid] = [posts[i] for i in order[half:]]
        anon_posts[uid] = [posts[i] for i in order[:half]]
    for uid in aux_only:
        aux_posts[uid] = dataset.posts_of(uid)
    for uid in anon_only:
        anon_posts[uid] = dataset.posts_of(uid)

    anon_ids = list(anon_posts)
    pseudo_order = rng.permutation(len(anon_ids))
    pseudonyms = {
        uid: f"anon_{pseudo_order[i]:06d}" for i, uid in enumerate(anon_ids)
    }

    auxiliary = _build_side(dataset, f"{dataset.name}-aux", aux_posts)
    anonymized = _build_side(
        dataset, f"{dataset.name}-anon", anon_posts, pseudonyms
    )
    overlap_set = set(overlap)
    truth = GroundTruth(
        {
            pseudonyms[uid]: (uid if uid in overlap_set else None)
            for uid in anon_ids
        }
    )
    return SplitResult(auxiliary, anonymized, truth)


def select_users_with_posts(
    dataset: ForumDataset,
    n_users: int,
    min_posts: int,
    seed: "int | np.random.Generator | None" = None,
    exact_posts: "int | None" = None,
    name: "str | None" = None,
) -> ForumDataset:
    """Sample ``n_users`` users having at least ``min_posts`` posts.

    With ``exact_posts`` set, each selected user keeps exactly that many
    randomly chosen posts — the paper's "50 users each with 20 posts" setup.
    """
    if n_users < 1:
        raise ConfigError(f"n_users must be >= 1, got {n_users}")
    if min_posts < 1:
        raise ConfigError(f"min_posts must be >= 1, got {min_posts}")
    if exact_posts is not None and exact_posts > min_posts:
        min_posts = exact_posts
    rng = derive_rng(seed)

    eligible = [
        uid for uid in dataset.user_ids() if len(dataset.posts_of(uid)) >= min_posts
    ]
    if len(eligible) < n_users:
        raise ConfigError(
            f"only {len(eligible)} users have >= {min_posts} posts, need {n_users}"
        )
    chosen = list(rng.choice(eligible, size=n_users, replace=False))

    out = ForumDataset(name or f"{dataset.name}-sel{n_users}")
    kept_posts: list[Post] = []
    for uid in chosen:
        out.add_user(dataset.user(uid))
        posts = dataset.posts_of(uid)
        if exact_posts is not None:
            idx = rng.choice(len(posts), size=exact_posts, replace=False)
            posts = [posts[i] for i in sorted(idx)]
        kept_posts.extend(posts)
    for tid in {p.thread_id for p in kept_posts}:
        out.add_thread(dataset.thread(tid))
    for post in kept_posts:
        out.add_post(post)
    return out
