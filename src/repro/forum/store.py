"""JSONL persistence for :class:`~repro.forum.models.ForumDataset`.

One line per record, with a ``kind`` discriminator, so corpora stream back in
a single pass and stay diff-able.  Format::

    {"kind": "meta", "name": ...}
    {"kind": "user", ...}
    {"kind": "thread", ...}
    {"kind": "post", ...}

:func:`dumps_dataset`/:func:`loads_dataset` are the string-level codec —
the file helpers and the sqlite-backed
:class:`~repro.store.CorpusStore` both build on them, so a corpus
round-trips byte-identically whether it lives on disk or in the service
state database.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.forum.models import ForumDataset, Post, Thread, User


def dumps_dataset(dataset: ForumDataset) -> str:
    """Serialize ``dataset`` to its canonical JSONL text.

    Record order is deterministic (meta, users, threads, posts — each in
    the dataset's insertion order), so equal datasets produce identical
    text and the text is a stable fingerprinting substrate.
    """
    lines = [json.dumps({"kind": "meta", "name": dataset.name})]
    for user in dataset.users():
        lines.append(
            json.dumps(
                {
                    "kind": "user",
                    "user_id": user.user_id,
                    "username": user.username,
                    "profile": user.profile,
                    "avatar_id": user.avatar_id,
                }
            )
        )
    for thread in dataset.threads():
        lines.append(
            json.dumps(
                {
                    "kind": "thread",
                    "thread_id": thread.thread_id,
                    "board": thread.board,
                    "topic": thread.topic,
                    "starter_id": thread.starter_id,
                }
            )
        )
    for post in dataset.posts():
        lines.append(
            json.dumps(
                {
                    "kind": "post",
                    "post_id": post.post_id,
                    "user_id": post.user_id,
                    "thread_id": post.thread_id,
                    "board": post.board,
                    "text": post.text,
                    "created_at": post.created_at,
                }
            )
        )
    return "\n".join(lines) + "\n"


def loads_dataset(text: str, source: str = "<string>") -> ForumDataset:
    """Parse JSONL text previously produced by :func:`dumps_dataset`.

    ``source`` names the origin in error messages (a path, a store key).
    """
    dataset: ForumDataset | None = None
    pending: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("kind", None)
        if kind == "meta":
            dataset = ForumDataset(record["name"])
        elif kind in ("user", "thread", "post"):
            pending.append({"kind": kind, **record})
        else:
            raise ValueError(f"{source}:{lineno}: unknown record kind {kind!r}")
    if dataset is None:
        raise ValueError(f"{source}: missing meta record")
    # Users and threads must exist before posts referencing them.
    for record in pending:
        if record["kind"] == "user":
            dataset.add_user(
                User(
                    user_id=record["user_id"],
                    username=record["username"],
                    profile=record.get("profile") or {},
                    avatar_id=record.get("avatar_id"),
                )
            )
    for record in pending:
        if record["kind"] == "thread":
            dataset.add_thread(
                Thread(
                    thread_id=record["thread_id"],
                    board=record["board"],
                    topic=record["topic"],
                    starter_id=record["starter_id"],
                )
            )
    for record in pending:
        if record["kind"] == "post":
            dataset.add_post(
                Post(
                    post_id=record["post_id"],
                    user_id=record["user_id"],
                    thread_id=record["thread_id"],
                    board=record["board"],
                    text=record["text"],
                    created_at=record.get("created_at", 0.0),
                )
            )
    return dataset


def save_dataset(dataset: ForumDataset, path: "str | Path") -> None:
    """Write ``dataset`` to ``path`` as JSONL."""
    Path(path).write_text(dumps_dataset(dataset), encoding="utf-8")


def load_dataset(path: "str | Path") -> ForumDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    return loads_dataset(path.read_text(encoding="utf-8"), source=str(path))
