"""JSONL persistence for :class:`~repro.forum.models.ForumDataset`.

One line per record, with a ``kind`` discriminator, so corpora stream back in
a single pass and stay diff-able.  Format::

    {"kind": "meta", "name": ...}
    {"kind": "user", ...}
    {"kind": "thread", ...}
    {"kind": "post", ...}

:func:`dumps_dataset`/:func:`loads_dataset` are the string-level codec —
the file helpers and the sqlite-backed
:class:`~repro.store.CorpusStore` both build on them, so a corpus
round-trips byte-identically whether it lives on disk or in the service
state database.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.forum.models import ForumDataset, Post, Thread, User


def dumps_dataset(dataset: ForumDataset) -> str:
    """Serialize ``dataset`` to its canonical JSONL text.

    Record order is deterministic (meta, users, threads, posts — each in
    the dataset's insertion order), so equal datasets produce identical
    text and the text is a stable fingerprinting substrate.
    """
    lines = [json.dumps({"kind": "meta", "name": dataset.name})]
    for user in dataset.users():
        lines.append(
            json.dumps(
                {
                    "kind": "user",
                    "user_id": user.user_id,
                    "username": user.username,
                    "profile": user.profile,
                    "avatar_id": user.avatar_id,
                }
            )
        )
    for thread in dataset.threads():
        lines.append(
            json.dumps(
                {
                    "kind": "thread",
                    "thread_id": thread.thread_id,
                    "board": thread.board,
                    "topic": thread.topic,
                    "starter_id": thread.starter_id,
                }
            )
        )
    for post in dataset.posts():
        lines.append(
            json.dumps(
                {
                    "kind": "post",
                    "post_id": post.post_id,
                    "user_id": post.user_id,
                    "thread_id": post.thread_id,
                    "board": post.board,
                    "text": post.text,
                    "created_at": post.created_at,
                }
            )
        )
    return "\n".join(lines) + "\n"


#: Required fields per JSONL record kind (beyond the discriminator).
_REQUIRED_FIELDS: dict = {
    "meta": ("name",),
    "user": ("user_id", "username"),
    "thread": ("thread_id", "board", "topic", "starter_id"),
    "post": ("post_id", "user_id", "thread_id", "board", "text"),
}


def loads_dataset(
    text: str,
    source: str = "<string>",
    max_users: "int | None" = None,
    max_posts: "int | None" = None,
) -> ForumDataset:
    """Parse JSONL text previously produced by :func:`dumps_dataset`.

    ``source`` names the origin in error messages (a path, a store key, a
    request body).  Malformed input — unparseable lines, non-object
    records, unknown kinds, missing required fields, a missing meta
    record — raises :class:`~repro.errors.ConfigError` (a ``ValueError``)
    with the offending line number, never a bare ``KeyError``.
    ``max_users``/``max_posts`` reject oversized corpora *while counting
    lines*, before any dataset object is built, so a hostile upload
    cannot balloon memory first and fail later.
    """
    dataset: ForumDataset | None = None
    pending: list[dict] = []
    n_users = n_posts = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"{source}:{lineno}: malformed JSONL record: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ConfigError(
                f"{source}:{lineno}: record must be a JSON object, "
                f"got {type(record).__name__}"
            )
        kind = record.pop("kind", None)
        if kind not in _REQUIRED_FIELDS:
            raise ConfigError(
                f"{source}:{lineno}: unknown record kind {kind!r}"
            )
        missing = [
            field for field in _REQUIRED_FIELDS[kind] if field not in record
        ]
        if missing:
            raise ConfigError(
                f"{source}:{lineno}: {kind} record missing fields {missing}"
            )
        if kind == "meta":
            dataset = ForumDataset(record["name"])
            continue
        if kind == "user":
            n_users += 1
            if max_users is not None and n_users > max_users:
                raise ConfigError(
                    f"{source}:{lineno}: corpus exceeds the "
                    f"{max_users}-user cap"
                )
        elif kind == "post":
            n_posts += 1
            if max_posts is not None and n_posts > max_posts:
                raise ConfigError(
                    f"{source}:{lineno}: corpus exceeds the "
                    f"{max_posts}-post cap"
                )
        pending.append({"kind": kind, **record})
    if dataset is None:
        raise ConfigError(f"{source}: missing meta record")
    # Users and threads must exist before posts referencing them.
    for record in pending:
        if record["kind"] == "user":
            dataset.add_user(
                User(
                    user_id=record["user_id"],
                    username=record["username"],
                    profile=record.get("profile") or {},
                    avatar_id=record.get("avatar_id"),
                )
            )
    for record in pending:
        if record["kind"] == "thread":
            dataset.add_thread(
                Thread(
                    thread_id=record["thread_id"],
                    board=record["board"],
                    topic=record["topic"],
                    starter_id=record["starter_id"],
                )
            )
    for record in pending:
        if record["kind"] == "post":
            dataset.add_post(
                Post(
                    post_id=record["post_id"],
                    user_id=record["user_id"],
                    thread_id=record["thread_id"],
                    board=record["board"],
                    text=record["text"],
                    created_at=record.get("created_at", 0.0),
                )
            )
    return dataset


def save_dataset(dataset: ForumDataset, path: "str | Path") -> None:
    """Write ``dataset`` to ``path`` as JSONL."""
    Path(path).write_text(dumps_dataset(dataset), encoding="utf-8")


def load_dataset(path: "str | Path") -> ForumDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    return loads_dataset(path.read_text(encoding="utf-8"), source=str(path))
