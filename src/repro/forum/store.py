"""JSONL persistence for :class:`~repro.forum.models.ForumDataset`.

One line per record, with a ``kind`` discriminator, so corpora stream back in
a single pass and stay diff-able.  Format::

    {"kind": "meta", "name": ...}
    {"kind": "user", ...}
    {"kind": "thread", ...}
    {"kind": "post", ...}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.forum.models import ForumDataset, Post, Thread, User


def save_dataset(dataset: ForumDataset, path: "str | Path") -> None:
    """Write ``dataset`` to ``path`` as JSONL."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({"kind": "meta", "name": dataset.name}) + "\n")
        for user in dataset.users():
            fh.write(
                json.dumps(
                    {
                        "kind": "user",
                        "user_id": user.user_id,
                        "username": user.username,
                        "profile": user.profile,
                        "avatar_id": user.avatar_id,
                    }
                )
                + "\n"
            )
        for thread in dataset.threads():
            fh.write(
                json.dumps(
                    {
                        "kind": "thread",
                        "thread_id": thread.thread_id,
                        "board": thread.board,
                        "topic": thread.topic,
                        "starter_id": thread.starter_id,
                    }
                )
                + "\n"
            )
        for post in dataset.posts():
            fh.write(
                json.dumps(
                    {
                        "kind": "post",
                        "post_id": post.post_id,
                        "user_id": post.user_id,
                        "thread_id": post.thread_id,
                        "board": post.board,
                        "text": post.text,
                        "created_at": post.created_at,
                    }
                )
                + "\n"
            )


def load_dataset(path: "str | Path") -> ForumDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    dataset: ForumDataset | None = None
    pending: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", None)
            if kind == "meta":
                dataset = ForumDataset(record["name"])
            elif kind in ("user", "thread", "post"):
                pending.append({"kind": kind, **record})
            else:
                raise ValueError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if dataset is None:
        raise ValueError(f"{path}: missing meta record")
    # Users and threads must exist before posts referencing them.
    for record in pending:
        if record["kind"] == "user":
            dataset.add_user(
                User(
                    user_id=record["user_id"],
                    username=record["username"],
                    profile=record.get("profile") or {},
                    avatar_id=record.get("avatar_id"),
                )
            )
    for record in pending:
        if record["kind"] == "thread":
            dataset.add_thread(
                Thread(
                    thread_id=record["thread_id"],
                    board=record["board"],
                    topic=record["topic"],
                    starter_id=record["starter_id"],
                )
            )
    for record in pending:
        if record["kind"] == "post":
            dataset.add_post(
                Post(
                    post_id=record["post_id"],
                    user_id=record["user_id"],
                    thread_id=record["thread_id"],
                    board=record["board"],
                    text=record["text"],
                    created_at=record.get("created_at", 0.0),
                )
            )
    return dataset
