"""Data model for online health forums (WebMD / HealthBoards shaped).

A :class:`ForumDataset` holds users, threads, and posts.  Posts belong to a
thread on a board; the *co-posting* relation over threads is what the UDA
graph is built from (Section II-B of the paper), and post text is what the
stylometric features are extracted from.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace

from repro.errors import EmptyDatasetError


@dataclass(frozen=True)
class User:
    """A registered forum member.

    ``profile`` carries the publicly visible attributes the linkage attack
    exploits (e.g. location, join year); ``avatar_id`` references an avatar
    fingerprint in the synthetic Internet world, if the user uploaded one.
    """

    user_id: str
    username: str
    profile: dict = field(default_factory=dict, hash=False)
    avatar_id: str | None = None


@dataclass(frozen=True)
class Post:
    """One message in a thread."""

    post_id: str
    user_id: str
    thread_id: str
    board: str
    text: str
    created_at: float = 0.0


@dataclass(frozen=True)
class Thread:
    """A discussion topic started by one user, replied to by others."""

    thread_id: str
    board: str
    topic: str
    starter_id: str


class ForumDataset:
    """An in-memory forum corpus with the query surface the attack needs.

    The container is index-backed: user -> posts and thread -> posts lookups
    are O(1) amortised, which matters because the UDA-graph construction
    walks every thread and the extractor walks every user.
    """

    def __init__(
        self,
        name: str,
        users: Iterable[User] = (),
        threads: Iterable[Thread] = (),
        posts: Iterable[Post] = (),
    ) -> None:
        self.name = name
        self._users: dict[str, User] = {}
        self._threads: dict[str, Thread] = {}
        self._posts: dict[str, Post] = {}
        self._posts_by_user: dict[str, list[str]] = defaultdict(list)
        self._posts_by_thread: dict[str, list[str]] = defaultdict(list)
        for user in users:
            self.add_user(user)
        for thread in threads:
            self.add_thread(thread)
        for post in posts:
            self.add_post(post)

    # --- mutation -----------------------------------------------------

    def add_user(self, user: User) -> None:
        if user.user_id in self._users:
            raise ValueError(f"duplicate user_id: {user.user_id}")
        self._users[user.user_id] = user

    def add_thread(self, thread: Thread) -> None:
        if thread.thread_id in self._threads:
            raise ValueError(f"duplicate thread_id: {thread.thread_id}")
        self._threads[thread.thread_id] = thread

    def add_post(self, post: Post) -> None:
        if post.post_id in self._posts:
            raise ValueError(f"duplicate post_id: {post.post_id}")
        if post.user_id not in self._users:
            raise ValueError(f"post {post.post_id} references unknown user {post.user_id}")
        if post.thread_id not in self._threads:
            raise ValueError(f"post {post.post_id} references unknown thread {post.thread_id}")
        self._posts[post.post_id] = post
        self._posts_by_user[post.user_id].append(post.post_id)
        self._posts_by_thread[post.thread_id].append(post.post_id)

    # --- queries ------------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self._users)

    @property
    def n_posts(self) -> int:
        return len(self._posts)

    @property
    def n_threads(self) -> int:
        return len(self._threads)

    def user_ids(self) -> list[str]:
        return list(self._users)

    def users(self) -> Iterator[User]:
        return iter(self._users.values())

    def threads(self) -> Iterator[Thread]:
        return iter(self._threads.values())

    def posts(self) -> Iterator[Post]:
        return iter(self._posts.values())

    def user(self, user_id: str) -> User:
        return self._users[user_id]

    def thread(self, thread_id: str) -> Thread:
        return self._threads[thread_id]

    def post(self, post_id: str) -> Post:
        return self._posts[post_id]

    def has_user(self, user_id: str) -> bool:
        return user_id in self._users

    def posts_of(self, user_id: str) -> list[Post]:
        """All posts authored by ``user_id`` (insertion order)."""
        return [self._posts[pid] for pid in self._posts_by_user.get(user_id, [])]

    def post_texts_of(self, user_id: str) -> list[str]:
        return [p.text for p in self.posts_of(user_id)]

    def posts_in_thread(self, thread_id: str) -> list[Post]:
        return [self._posts[pid] for pid in self._posts_by_thread.get(thread_id, [])]

    def thread_participants(self, thread_id: str) -> list[str]:
        """Distinct users who posted in a thread, in first-post order."""
        seen: dict[str, None] = {}
        for pid in self._posts_by_thread.get(thread_id, []):
            seen.setdefault(self._posts[pid].user_id, None)
        return list(seen)

    def posts_per_user(self) -> Counter:
        """``user_id -> post count`` (zero-post users included)."""
        counts = Counter({uid: 0 for uid in self._users})
        for uid, pids in self._posts_by_user.items():
            counts[uid] = len(pids)
        return counts

    def post_lengths_words(self) -> list[int]:
        """Word counts of every post (Fig 2's measurement)."""
        return [len(p.text.split()) for p in self._posts.values()]

    def mean_posts_per_user(self) -> float:
        if not self._users:
            raise EmptyDatasetError(f"dataset {self.name!r} has no users")
        return self.n_posts / self.n_users

    # --- restructuring ------------------------------------------------

    def subset_by_users(
        self, user_ids: Iterable[str], name: str | None = None
    ) -> "ForumDataset":
        """Dataset restricted to ``user_ids`` and their posts.

        Threads are kept whenever they contain at least one retained post,
        so co-posting structure among retained users survives.
        """
        keep = set(user_ids)
        missing = keep - set(self._users)
        if missing:
            raise KeyError(f"unknown user ids: {sorted(missing)[:5]}")
        out = ForumDataset(name or f"{self.name}-subset")
        for uid in keep:
            out.add_user(self._users[uid])
        kept_threads = {
            p.thread_id for p in self._posts.values() if p.user_id in keep
        }
        for tid in kept_threads:
            out.add_thread(self._threads[tid])
        for post in self._posts.values():
            if post.user_id in keep:
                out.add_post(post)
        return out

    def with_pseudonyms(
        self, mapping: dict[str, str], name: str | None = None
    ) -> tuple["ForumDataset", dict[str, str]]:
        """Replace user ids with pseudonyms (the paper's "random ID" step).

        ``mapping`` is original id -> pseudonym; returns the anonymized
        dataset and the inverse ground-truth mapping pseudonym -> original.
        Usernames and profiles are stripped (that is what anonymization
        removes); text, threads, and timestamps are untouched.
        """
        unknown = set(mapping) - set(self._users)
        if unknown:
            raise KeyError(f"mapping references unknown users: {sorted(unknown)[:5]}")
        out = ForumDataset(name or f"{self.name}-anon")
        for uid, user in self._users.items():
            pseudo = mapping.get(uid, uid)
            out.add_user(User(user_id=pseudo, username=pseudo, profile={}))
        for thread in self._threads.values():
            out.add_thread(
                replace(thread, starter_id=mapping.get(thread.starter_id, thread.starter_id))
            )
        for post in self._posts.values():
            out.add_post(replace(post, user_id=mapping.get(post.user_id, post.user_id)))
        return out, {v: k for k, v in mapping.items()}

    def __repr__(self) -> str:
        return (
            f"ForumDataset(name={self.name!r}, users={self.n_users}, "
            f"threads={self.n_threads}, posts={self.n_posts})"
        )
