"""Forum substrate: data model, persistence, and aux/anon dataset splitting."""

from repro.forum.models import ForumDataset, Post, Thread, User
from repro.forum.split import (
    GroundTruth,
    SplitResult,
    closed_world_split,
    open_world_split,
    select_users_with_posts,
)
from repro.forum.store import (
    dumps_dataset,
    load_dataset,
    loads_dataset,
    save_dataset,
)

__all__ = [
    "ForumDataset",
    "GroundTruth",
    "Post",
    "SplitResult",
    "Thread",
    "User",
    "closed_world_split",
    "dumps_dataset",
    "load_dataset",
    "loads_dataset",
    "open_world_split",
    "save_dataset",
    "select_users_with_posts",
]
