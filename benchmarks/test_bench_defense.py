"""Extension — anonymization defenses vs De-Health (paper §VII future work).

The paper leaves online-health-data anonymization as an open problem; this
bench evaluates the defense families its Discussion points at.  Expected
shape (and our measured finding): style obfuscation cuts the refined-DA
accuracy at small utility cost, while pure graph scrambling barely helps —
because the attack's similarity is attribute-dominated (c3 = 0.9), exactly
as the weight ablation shows.
"""

from repro.datagen import webmd_like
from repro.defense import evaluate_defense, obfuscate_dataset, scramble_threads
from repro.experiments import format_table

from benchmarks.conftest import emit


def test_defense_evaluation(benchmark):
    corpus = webmd_like(n_users=200, seed=20).dataset

    defenses = {
        "obfuscation s=0.5": lambda ds: obfuscate_dataset(ds, strength=0.5, seed=1),
        "obfuscation s=1.0": lambda ds: obfuscate_dataset(ds, strength=1.0, seed=1),
        "thread scrambling": lambda ds: scramble_threads(ds, prob=1.0, seed=1),
        "obfuscation + scrambling": lambda ds: scramble_threads(
            obfuscate_dataset(ds, strength=1.0, seed=1), prob=1.0, seed=2
        ),
    }

    def run():
        return {
            name: evaluate_defense(corpus, fn, defense_name=name, k=10, seed=2)
            for name, fn in defenses.items()
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            name,
            r.topk_success_before,
            r.topk_success_after,
            r.accuracy_before,
            r.accuracy_after,
            r.content_preservation,
        ]
        for name, r in reports.items()
    ]
    emit(
        "Defense evaluation (K=10)",
        format_table(
            ["defense", "topK before", "topK after", "acc before", "acc after", "content"],
            rows,
        ),
    )

    full = reports["obfuscation s=1.0"]
    half = reports["obfuscation s=0.5"]
    scramble = reports["thread scrambling"]
    combo = reports["obfuscation + scrambling"]

    # style scrubbing hurts the attack, monotonically in strength
    assert full.accuracy_after <= full.accuracy_before
    assert full.accuracy_after <= half.accuracy_after + 0.05
    # at small utility cost
    assert full.content_preservation >= 0.75
    # graph-only defense is weak against attribute-dominated similarity
    assert scramble.accuracy_reduction <= full.accuracy_reduction + 0.05
    assert scramble.content_preservation == 1.0
    # combining channels is at least as strong as the best single channel
    assert combo.accuracy_after <= min(full.accuracy_after, scramble.accuracy_after) + 0.08
