"""Fig 2 — post length distribution.

Paper: mean post length 127.59 words (WebMD) / 147.24 words (HB); most
posts in both corpora are under 300 words.
"""

from repro.experiments import format_table, run_fig2

from benchmarks.conftest import emit

PAPER = {
    "webmd": {"mean": 127.59},
    "healthboards": {"mean": 147.24},
}


def test_fig2_post_length(benchmark, webmd_corpus, hb_corpus):
    results = benchmark.pedantic(
        lambda: [run_fig2(webmd_corpus), run_fig2(hb_corpus)],
        rounds=1,
        iterations=1,
    )
    rows = []
    for res in results:
        rows.append([res.corpus, "mean words", PAPER[res.corpus]["mean"], res.mean_words])
        rows.append([res.corpus, "frac posts <300 words", 0.9, res.fraction_under_300])
    emit(
        "Fig 2: post length distribution",
        format_table(["corpus", "statistic", "paper", "measured"], rows),
    )

    webmd, hb = results
    # shape: HB posts longer on average; bulk of mass under 300 words
    assert hb.mean_words > webmd.mean_words
    assert webmd.fraction_under_300 > 0.85
    assert hb.fraction_under_300 > 0.8
    # means within a loose band of the paper's
    assert 0.75 * 127.59 <= webmd.mean_words <= 1.25 * 127.59
    assert 0.75 * 147.24 <= hb.mean_words <= 1.25 * 147.24
