"""Fig 5 — open-world Top-K DA CDFs.

Paper shapes: CDF grows with K; higher overlap ratios do better.  The
closed-world comparison (Fig 3 beats Fig 5 at the same K) is printed for
reference but not asserted here: at bench scale the evaluated populations
differ (open-world overlap users all have >= 2 posts), so the comparison is
not population-matched the way the paper's full-corpus one is.
"""

import numpy as np

from repro.experiments import format_table, run_fig5

from benchmarks.conftest import emit

KS = (1, 5, 10, 50, 100, 250, 500)


def test_fig5_topk_open_world(benchmark, webmd_open_corpus):
    def run():
        return run_fig5(dataset=webmd_open_corpus, ks=KS, seed=5)

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [c.label, c.n_anonymized] + [round(float(v), 3) for v in c.cdf]
        for c in curves
    ]
    emit(
        "Fig 5: open-world Top-K DA CDF (WebMD-like)",
        format_table(["overlap", "n_overlap"] + [f"K={k}" for k in KS], rows),
    )

    for curve in curves:
        assert (np.diff(curve.cdf) >= -1e-9).all()  # grows with K

    by_label = {c.label.split("-")[-1]: c for c in curves}
    # the ratio sweep must not be degenerate
    assert by_label["90%"].n_anonymized > by_label["50%"].n_anonymized
    # the paper's headline Fig-5 claim: open-world Top-K DA stays
    # satisfying — a moderate K captures the bulk of true mappings at
    # every overlap ratio
    for curve in curves:
        assert curve.at(250) >= 0.75, curve.label
    # DEVIATION (recorded in EXPERIMENTS.md): the paper's fixed-K ordering
    # "higher overlap ratio = better" does not reproduce under
    # attribute-dominated weights — higher overlap also enlarges the
    # auxiliary population, which dominates at bench scale.  We assert the
    # ordering in its size-normalised form instead: success at a rank
    # proportional to the auxiliary population is comparable across ratios.
    normalised = {
        label: c.at(max(1, int(0.3 * (c.n_anonymized / 0.5))))
        for label, c in by_label.items()
    }
    assert max(normalised.values()) - min(normalised.values()) <= 0.45
