"""Candidate blocking vs dense scoring — the pair-space economics bench.

One synthetic scaling world (600-user WebMD-like corpus, closed split),
scored under every blocking policy with shared UDA graphs.  Claims:

* **pruning** — the attribute-index policy scores at most 1/5 of the
  dense pair count (its per-row keep fraction is 0.2 by construction);
* **recall** — its direct top-10 candidate sets retain >= 95% of the
  dense top-10 pairs: the pruning does not cost the attack its signal;
* **memory** — the blocked similarity cache holds strictly fewer bytes
  than the dense (n1 × n2) matrices; both totals are reported.

The union policy is also checked for near-perfect recall (it is the
recall-safe production default candidate), and degree_band is reported
for completeness without a pruning gate (forum degree distributions are
too homogeneous for bands alone to prune hard).
"""

from repro.experiments import run_scaling

from benchmarks.conftest import emit

SCALING_USERS = 600
SCALING_SEED = 2
SPLIT_SEED = 5
TOP_K = 10

#: Acceptance gates for the attribute-index blocker.
MAX_PAIR_FRACTION = 0.2
MIN_TOPK_RECALL = 0.95
#: The union blocker must stay essentially lossless w.r.t. dense top-k.
MIN_UNION_RECALL = 0.99


def test_blocking_pair_economics(benchmark):
    result = benchmark.pedantic(
        lambda: run_scaling(
            n_users=SCALING_USERS,
            seed=SCALING_SEED,
            split_seed=SPLIT_SEED,
            top_k=TOP_K,
            blocking_keep=MAX_PAIR_FRACTION,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Blocking scaling world ({result.n_anonymized}×{result.n_auxiliary}, "
        f"top-{result.top_k})",
        result.table(),
    )

    dense = result.row("none")
    attr = result.row("attr_index")
    union = result.row("union")

    assert dense.pair_fraction == 1.0
    assert attr.n_pairs * 5 <= dense.n_pairs, (
        f"attr_index scored {attr.n_pairs} of {dense.n_pairs} pairs, "
        f"more than 1/5 of the dense pair space"
    )
    assert attr.topk_recall >= MIN_TOPK_RECALL, (
        f"attr_index top-{TOP_K} recall {attr.topk_recall:.3f} < "
        f"{MIN_TOPK_RECALL} vs dense"
    )
    assert union.topk_recall >= MIN_UNION_RECALL

    # peak similarity-matrix bytes: blocked must undercut dense, and both
    # totals must be real (reported above for the record)
    assert 0 < attr.matrix_bytes < dense.matrix_bytes
    emit(
        "Blocking memory",
        f"dense cache {dense.matrix_bytes / 1e6:.2f} MB vs "
        f"attr_index {attr.matrix_bytes / 1e6:.2f} MB "
        f"({dense.matrix_bytes / attr.matrix_bytes:.1f}x smaller)",
    )
