"""Candidate blocking vs dense scoring — the pair-space economics bench.

One synthetic scaling world (600-user WebMD-like corpus, closed split),
scored under every blocking policy with shared UDA graphs.  Claims:

* **pruning** — the attribute-index and LSH policies score at most 1/5 of
  the dense pair count (their per-row keep fraction is 0.2 by
  construction), ann_graph at most ``ef/n2``;
* **recall** — attr_index retains >= 95% of the dense top-10 pairs, and
  the ANN policies (lsh, ann_graph) retain >= 90% of the dense top-10
  *true-match hits* — approximate candidate generation does not cost the
  attack its signal;
* **generation** — LSH candidate generation (seeded signatures + bucket
  collisions) is faster than the attribute inverted index on the same
  world (asserted on >= 4-core machines, like the executor and extraction
  benches: determinism-first, speedup-where-measurable), and touches no
  ``n1 × n2`` array anywhere;
* **memory** — the blocked similarity cache holds strictly fewer bytes
  than the dense (n1 × n2) matrices; both totals are reported.

The union policy is also checked for near-perfect recall (it is the
recall-safe production default candidate), and degree_band is reported
for completeness without a pruning gate (forum degree distributions are
too homogeneous for bands alone to prune hard).

Measured numbers land in ``BENCH_blocking.json`` at the repo root, next
to ``BENCH_extraction.json`` — the perf trajectory of candidate
generation.
"""

from __future__ import annotations

import heapq
import json
import os
import time
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.core.blocking import (
    NSWIndex,
    _profile_matrix,
    ann_graph_candidates,
    attr_index_candidates,
    lsh_candidates,
)
from repro.datagen import webmd_like
from repro.experiments import run_scaling
from repro.forum.split import closed_world_split
from repro.graph.uda import UDAGraph
from repro.stylometry import ExtractionCache, FeatureExtractor

from benchmarks.conftest import emit

SCALING_USERS = 600
SCALING_SEED = 2
SPLIT_SEED = 5
TOP_K = 10

#: Acceptance gates for the attribute-index blocker.
MAX_PAIR_FRACTION = 0.2
MIN_TOPK_RECALL = 0.95
#: The union blocker must stay essentially lossless w.r.t. dense top-k.
MIN_UNION_RECALL = 0.99
#: LSH must keep >= 90% of the dense top-10 true-match hits.
MIN_ANN_TM_RECALL = 0.9
#: The NSW policy must keep *every* dense true-match hit (its beam search
#: rescoring is exact over the candidates it visits, so on this world it
#: actually finds slightly more true-match hits than the dense top-10).
MIN_ANN_GRAPH_TM_RECALL = 1.0
#: LSH generation must beat attr_index generation on capable machines.
TIMING_MIN_CORES = 4
TIMING_ROUNDS = 3
#: The vectorized NSW build must beat the frozen pre-vectorization build
#: by at least this factor on capable machines.
MIN_NSW_BUILD_SPEEDUP = 10.0

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_blocking.json"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux fallback
        return os.cpu_count() or 1


def _best_of(fn, rounds: int = TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _merge_bench(updates: dict) -> None:
    """Merge sections into ``BENCH_blocking.json`` (read-modify-write, so
    the three bench tests can each own a slice of the record)."""
    record = {}
    if BENCH_JSON.exists():
        record = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    record.update(updates)
    BENCH_JSON.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _assert_numeric_throughput(policies: dict) -> None:
    """Every throughput field must be a real number — a ``null`` in the
    bench record hides a policy whose generation was never timed (the
    regression this guards: the dense row emitted ``null`` because its
    zero-cost generation step falsied the rate expression)."""
    for policy, row in policies.items():
        for field in ("generation_s", "generation_users_per_s"):
            value = row[field]
            assert isinstance(value, (int, float)) and value is not None, (
                f"policy {policy!r} has non-numeric {field}: {value!r}"
            )


class _FrozenNSWIndex:
    """The pre-vectorization NSW build, frozen as the speedup baseline.

    Verbatim behaviour of the sequential implementation this repo shipped
    before the batched build: one greedy ``search`` per inserted node,
    Python heaps, per-edge pruning.  Kept here (not imported) so the
    baseline cannot silently improve along with the production code.
    """

    def __init__(self, profiles, m: int = 12, ef: int = 48, seed: int = 0):
        self.m = m
        self.ef = ef
        X = sparse.csr_matrix(profiles, dtype=np.float64)
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1)).ravel())
        scale = np.divide(
            1.0, norms, out=np.zeros_like(norms), where=norms > 0
        )
        self.X = sparse.csr_matrix(X.multiply(scale[:, None]))
        self.n = X.shape[0]
        self.neighbors: list = [[] for _ in range(self.n)]
        rng = np.random.default_rng(np.random.PCG64(seed))
        self._order = rng.permutation(self.n)
        self._entry = int(self._order[0]) if self.n else 0
        self._build()

    def _build(self) -> None:
        max_degree = 2 * self.m
        for rank in range(1, self.n):
            node = int(self._order[rank])
            q = self.X[node].toarray().ravel()
            found = self.search(q, ef=max(self.ef, self.m))
            links = [j for _, j in found[: self.m]]
            self.neighbors[node] = links
            for j in links:
                self.neighbors[j].append(node)
                if len(self.neighbors[j]) > max_degree:
                    self.neighbors[j] = self._prune(j, max_degree)

    def _prune(self, node: int, max_degree: int) -> list:
        cand = sorted(set(self.neighbors[node]))
        sims = np.asarray(
            self.X[cand] @ self.X[node].toarray().ravel()
        ).ravel()
        ranked = sorted(zip(-sims, cand))
        return [j for _, j in ranked[:max_degree]]

    def search(self, q, ef=None) -> list:
        if not self.n:
            return []
        ef = ef or self.ef
        entry = self._entry
        sim_entry = float((self.X[entry] @ q)[0])
        visited = {entry}
        candidates = [(-sim_entry, entry)]
        results = [(sim_entry, entry)]
        while candidates:
            neg_sim, node = heapq.heappop(candidates)
            if -neg_sim < results[0][0] and len(results) >= ef:
                break
            fresh = [j for j in self.neighbors[node] if j not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            sims = np.asarray(self.X[fresh] @ q).ravel()
            for j, sim in zip(fresh, sims):
                sim = float(sim)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(candidates, (-sim, j))
                    heapq.heappush(results, (sim, j))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted(results, key=lambda pair: (-pair[0], pair[1]))


def test_blocking_pair_economics(benchmark):
    result = benchmark.pedantic(
        lambda: run_scaling(
            n_users=SCALING_USERS,
            seed=SCALING_SEED,
            split_seed=SPLIT_SEED,
            top_k=TOP_K,
            blocking_keep=MAX_PAIR_FRACTION,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Blocking scaling world ({result.n_anonymized}×{result.n_auxiliary}, "
        f"top-{result.top_k})",
        result.table(),
    )

    dense = result.row("none")
    attr = result.row("attr_index")
    union = result.row("union")
    lsh = result.row("lsh")
    ann = result.row("ann_graph")

    assert dense.pair_fraction == 1.0
    assert attr.n_pairs * 5 <= dense.n_pairs, (
        f"attr_index scored {attr.n_pairs} of {dense.n_pairs} pairs, "
        f"more than 1/5 of the dense pair space"
    )
    assert attr.topk_recall >= MIN_TOPK_RECALL, (
        f"attr_index top-{TOP_K} recall {attr.topk_recall:.3f} < "
        f"{MIN_TOPK_RECALL} vs dense"
    )
    assert union.topk_recall >= MIN_UNION_RECALL

    # --- ANN policies: sub-quadratic candidate generation ----------------
    assert lsh.n_pairs * 5 <= dense.n_pairs, (
        f"lsh scored {lsh.n_pairs} of {dense.n_pairs} pairs, "
        f"more than 1/5 of the dense pair space"
    )
    assert ann.n_pairs * 5 <= dense.n_pairs
    assert lsh.true_match_recall >= MIN_ANN_TM_RECALL, (
        f"lsh top-{TOP_K} true-match recall {lsh.true_match_recall:.3f} < "
        f"{MIN_ANN_TM_RECALL} vs dense"
    )
    assert ann.true_match_recall >= MIN_ANN_GRAPH_TM_RECALL, (
        f"ann_graph top-{TOP_K} true-match recall "
        f"{ann.true_match_recall:.3f} < {MIN_ANN_GRAPH_TM_RECALL} vs dense"
    )
    # generation never materialized the pair space: the collision stream
    # is the entire cost, and it stayed below the full n1 × n2 grid
    assert lsh.meta["lsh_collision_touches"] < dense.n_pairs * 2
    assert lsh.meta["lsh_distinct_pairs"] < dense.n_pairs

    # peak similarity-matrix bytes: blocked must undercut dense, and both
    # totals must be real (reported above for the record)
    assert 0 < attr.matrix_bytes < dense.matrix_bytes
    assert 0 < lsh.matrix_bytes < dense.matrix_bytes
    emit(
        "Blocking memory",
        f"dense cache {dense.matrix_bytes / 1e6:.2f} MB vs "
        f"attr_index {attr.matrix_bytes / 1e6:.2f} MB "
        f"({dense.matrix_bytes / attr.matrix_bytes:.1f}x smaller) vs "
        f"lsh {lsh.matrix_bytes / 1e6:.2f} MB",
    )

    # --- candidate-generation wall time: lsh vs the inverted index -------
    # Timed on freshly built graphs (shared extraction cache keeps the
    # rebuild cheap), best-of-N on both sides so one scheduler hiccup
    # cannot decide the gate.
    dataset = webmd_like(
        n_users=SCALING_USERS, seed=SCALING_SEED, min_posts_per_user=2
    ).dataset
    split = closed_world_split(dataset, aux_fraction=0.5, seed=SPLIT_SEED)
    extractor = FeatureExtractor(cache=ExtractionCache())
    g1 = UDAGraph(split.anonymized, extractor=extractor)
    g2 = UDAGraph(split.auxiliary, extractor=extractor)
    attr_gen_s = _best_of(lambda: attr_index_candidates(g1, g2))
    lsh_gen_s = _best_of(lambda: lsh_candidates(g1, g2))

    cores = _available_cores()
    policies = {
        row.policy: {
            "pair_fraction": round(row.pair_fraction, 4),
            "topk_recall": round(row.topk_recall, 4),
            "true_match_recall": round(row.true_match_recall, 4),
            "generation_s": round(row.generation_s, 4),
            # 0.0 = "no generation step to time" (the dense policy):
            # a numeric sentinel, because a null here has historically
            # hidden a policy that was never timed at all
            "generation_users_per_s": (
                round(result.n_anonymized / row.generation_s, 1)
                if row.generation_s
                else 0.0
            ),
            "cache_bytes": row.matrix_bytes,
        }
        for row in result.rows
    }
    _assert_numeric_throughput(policies)
    record = {
        "corpus_users": SCALING_USERS,
        "corpus_seed": SCALING_SEED,
        "n_anonymized": result.n_anonymized,
        "n_auxiliary": result.n_auxiliary,
        "cores": cores,
        "top_k": result.top_k,
        "dense_pairs": dense.n_pairs,
        "dense_cache_bytes": dense.matrix_bytes,
        "policies": policies,
        "attr_index_gen_s_best": round(attr_gen_s, 4),
        "lsh_gen_s_best": round(lsh_gen_s, 4),
        "lsh_vs_attr_index_speedup": round(attr_gen_s / lsh_gen_s, 2),
    }
    _merge_bench(record)
    emit(
        f"Blocking generation ({cores} core(s))",
        f"attr_index best {attr_gen_s * 1e3:.1f} ms vs lsh best "
        f"{lsh_gen_s * 1e3:.1f} ms "
        f"({attr_gen_s / lsh_gen_s:.2f}x)",
    )

    if cores >= TIMING_MIN_CORES:
        assert lsh_gen_s < attr_gen_s, (
            f"lsh candidate generation ({lsh_gen_s * 1e3:.1f} ms) did not "
            f"beat attr_index ({attr_gen_s * 1e3:.1f} ms) on {cores} cores"
        )


def test_nsw_build_speedup(benchmark):
    """The vectorized NSW build vs the frozen sequential baseline.

    Determinism is asserted everywhere (two builds must produce identical
    candidate masks); the >= 10x wall-clock gate only fires on >= 4-core
    machines, matching the other timing gates in this suite.
    """
    dataset = webmd_like(
        n_users=SCALING_USERS, seed=SCALING_SEED, min_posts_per_user=2
    ).dataset
    split = closed_world_split(dataset, aux_fraction=0.5, seed=SPLIT_SEED)
    extractor = FeatureExtractor(cache=ExtractionCache())
    g1 = UDAGraph(split.anonymized, extractor=extractor)
    g2 = UDAGraph(split.auxiliary, extractor=extractor)
    X2 = _profile_matrix(g2)

    benchmark.pedantic(
        lambda: NSWIndex(X2, m=12, ef=48, seed=0), rounds=1, iterations=1
    )
    build_s = _best_of(lambda: NSWIndex(X2, m=12, ef=48, seed=0))
    # the frozen baseline costs seconds per round: two rounds keep the
    # bench under control while still absorbing one scheduler hiccup
    frozen_s = _best_of(
        lambda: _FrozenNSWIndex(X2, m=12, ef=48, seed=0), rounds=2
    )
    gen_s = _best_of(lambda: ann_graph_candidates(g1, g2))
    speedup = frozen_s / build_s

    # determinism: the full candidate mask must replay bit-identically
    a = ann_graph_candidates(g1, g2)
    b = ann_graph_candidates(g1, g2)
    assert (a.matrix != b.matrix).nnz == 0
    assert a.meta == b.meta

    cores = _available_cores()
    _merge_bench(
        {
            "ann_graph_build": {
                "n_indexed": int(X2.shape[0]),
                "build_s_best": round(build_s, 4),
                "frozen_build_s_best": round(frozen_s, 4),
                "build_speedup": round(speedup, 2),
                "generation_s_best": round(gen_s, 4),
                "generation_users_per_s": round(g1.n_users / gen_s, 1),
                "cores": cores,
            }
        }
    )
    emit(
        f"NSW build ({X2.shape[0]} profiles, {cores} core(s))",
        f"vectorized {build_s * 1e3:.0f} ms vs frozen sequential "
        f"{frozen_s * 1e3:.0f} ms ({speedup:.1f}x); full generation "
        f"{gen_s * 1e3:.0f} ms",
    )
    if cores >= TIMING_MIN_CORES:
        assert speedup >= MIN_NSW_BUILD_SPEEDUP, (
            f"NSW build speedup {speedup:.1f}x < {MIN_NSW_BUILD_SPEEDUP}x "
            f"over the frozen baseline on {cores} cores"
        )


#: Refined pre-rank bench world: a 200-user corpus keeps the full refined
#: phase cheap while leaving 100+ users to classify.
PRERANK_USERS = 200
PRERANK_TOP_K = 20
PRERANK_KEEP = 0.5
#: The cut may cost at most one percentage point of top-1 accuracy.
MAX_PRERANK_ACCURACY_DROP = 0.01


def test_refined_prerank_economics(benchmark):
    """``refined_keep_fraction=0.5`` halves the refined phase's classifier
    work at (essentially) unchanged top-1 accuracy.

    The phase-1 similarity ranking concentrates true matches near the
    front of each candidate set, so cutting the back half drops mostly
    distractors; the gate allows at most a one-point accuracy drop.
    """
    from repro.core import DeHealth, DeHealthConfig

    dataset = webmd_like(
        n_users=PRERANK_USERS, seed=SCALING_SEED, min_posts_per_user=2
    ).dataset
    split = closed_world_split(dataset, aux_fraction=0.5, seed=SPLIT_SEED)
    extractor = FeatureExtractor(cache=ExtractionCache())
    g1 = UDAGraph(split.anonymized, extractor=extractor)
    g2 = UDAGraph(split.auxiliary, extractor=extractor)
    caches: tuple = ({}, {})

    def run(keep_fraction: float):
        config = DeHealthConfig(
            top_k=PRERANK_TOP_K,
            classifier="centroid",
            refined_keep_fraction=keep_fraction,
        )
        attack = DeHealth(config).fit(
            g1, g2, extractor=extractor, post_matrix_caches=caches
        )
        started = time.perf_counter()
        result = attack.deanonymize()
        elapsed = time.perf_counter() - started
        return result.accuracy(split.truth), elapsed, attack._refined

    # warm the shared post-matrix caches so the timed comparison is pure
    # classifier work, then measure both settings
    run(1.0)
    acc_full, full_s, _ = benchmark.pedantic(
        lambda: run(1.0), rounds=1, iterations=1
    )
    acc_cut, cut_s, refined = run(PRERANK_KEEP)
    stats = refined.prerank_stats
    classified_fraction = stats["candidates_kept"] / stats["candidates_in"]

    # the cut really halves the classified candidate volume ...
    assert classified_fraction <= PRERANK_KEEP + 1e-9, (
        f"pre-rank classified {classified_fraction:.3f} of candidates, "
        f"more than keep_fraction={PRERANK_KEEP}"
    )
    # ... at (essentially) unchanged accuracy
    assert acc_cut >= acc_full - MAX_PRERANK_ACCURACY_DROP, (
        f"refined accuracy dropped from {acc_full:.4f} to {acc_cut:.4f} "
        f"under keep_fraction={PRERANK_KEEP} — more than "
        f"{MAX_PRERANK_ACCURACY_DROP:.0%}"
    )

    cores = _available_cores()
    _merge_bench(
        {
            "refined_prerank": {
                "corpus_users": PRERANK_USERS,
                "top_k": PRERANK_TOP_K,
                "keep_fraction": PRERANK_KEEP,
                "classifier": "centroid",
                "accuracy_full": round(acc_full, 4),
                "accuracy_cut": round(acc_cut, 4),
                "classified_fraction": round(classified_fraction, 4),
                "refined_s_full": round(full_s, 4),
                "refined_s_cut": round(cut_s, 4),
                "refined_speedup": round(full_s / cut_s, 2),
                "cores": cores,
            }
        }
    )
    emit(
        f"Refined pre-rank ({PRERANK_USERS}-user world, "
        f"top-{PRERANK_TOP_K}, keep {PRERANK_KEEP})",
        f"accuracy {acc_full:.1%} -> {acc_cut:.1%}, refined phase "
        f"{full_s * 1e3:.0f} ms -> {cut_s * 1e3:.0f} ms "
        f"({full_s / cut_s:.1f}x), classified "
        f"{classified_fraction:.0%} of candidates",
    )
    if cores >= TIMING_MIN_CORES:
        assert cut_s < full_s, (
            f"pre-ranked refined phase ({cut_s * 1e3:.0f} ms) did not beat "
            f"the full refined phase ({full_s * 1e3:.0f} ms) on {cores} cores"
        )
