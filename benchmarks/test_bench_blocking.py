"""Candidate blocking vs dense scoring — the pair-space economics bench.

One synthetic scaling world (600-user WebMD-like corpus, closed split),
scored under every blocking policy with shared UDA graphs.  Claims:

* **pruning** — the attribute-index and LSH policies score at most 1/5 of
  the dense pair count (their per-row keep fraction is 0.2 by
  construction), ann_graph at most ``ef/n2``;
* **recall** — attr_index retains >= 95% of the dense top-10 pairs, and
  the ANN policies (lsh, ann_graph) retain >= 90% of the dense top-10
  *true-match hits* — approximate candidate generation does not cost the
  attack its signal;
* **generation** — LSH candidate generation (seeded signatures + bucket
  collisions) is faster than the attribute inverted index on the same
  world (asserted on >= 4-core machines, like the executor and extraction
  benches: determinism-first, speedup-where-measurable), and touches no
  ``n1 × n2`` array anywhere;
* **memory** — the blocked similarity cache holds strictly fewer bytes
  than the dense (n1 × n2) matrices; both totals are reported.

The union policy is also checked for near-perfect recall (it is the
recall-safe production default candidate), and degree_band is reported
for completeness without a pruning gate (forum degree distributions are
too homogeneous for bands alone to prune hard).

Measured numbers land in ``BENCH_blocking.json`` at the repo root, next
to ``BENCH_extraction.json`` — the perf trajectory of candidate
generation.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.blocking import attr_index_candidates, lsh_candidates
from repro.datagen import webmd_like
from repro.experiments import run_scaling
from repro.forum.split import closed_world_split
from repro.graph.uda import UDAGraph
from repro.stylometry import ExtractionCache, FeatureExtractor

from benchmarks.conftest import emit

SCALING_USERS = 600
SCALING_SEED = 2
SPLIT_SEED = 5
TOP_K = 10

#: Acceptance gates for the attribute-index blocker.
MAX_PAIR_FRACTION = 0.2
MIN_TOPK_RECALL = 0.95
#: The union blocker must stay essentially lossless w.r.t. dense top-k.
MIN_UNION_RECALL = 0.99
#: The ANN policies must keep >= 90% of the dense top-10 true-match hits.
MIN_ANN_TM_RECALL = 0.9
#: LSH generation must beat attr_index generation on capable machines.
TIMING_MIN_CORES = 4
TIMING_ROUNDS = 3

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_blocking.json"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux fallback
        return os.cpu_count() or 1


def _best_of(fn, rounds: int = TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_blocking_pair_economics(benchmark):
    result = benchmark.pedantic(
        lambda: run_scaling(
            n_users=SCALING_USERS,
            seed=SCALING_SEED,
            split_seed=SPLIT_SEED,
            top_k=TOP_K,
            blocking_keep=MAX_PAIR_FRACTION,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Blocking scaling world ({result.n_anonymized}×{result.n_auxiliary}, "
        f"top-{result.top_k})",
        result.table(),
    )

    dense = result.row("none")
    attr = result.row("attr_index")
    union = result.row("union")
    lsh = result.row("lsh")
    ann = result.row("ann_graph")

    assert dense.pair_fraction == 1.0
    assert attr.n_pairs * 5 <= dense.n_pairs, (
        f"attr_index scored {attr.n_pairs} of {dense.n_pairs} pairs, "
        f"more than 1/5 of the dense pair space"
    )
    assert attr.topk_recall >= MIN_TOPK_RECALL, (
        f"attr_index top-{TOP_K} recall {attr.topk_recall:.3f} < "
        f"{MIN_TOPK_RECALL} vs dense"
    )
    assert union.topk_recall >= MIN_UNION_RECALL

    # --- ANN policies: sub-quadratic candidate generation ----------------
    assert lsh.n_pairs * 5 <= dense.n_pairs, (
        f"lsh scored {lsh.n_pairs} of {dense.n_pairs} pairs, "
        f"more than 1/5 of the dense pair space"
    )
    assert ann.n_pairs * 5 <= dense.n_pairs
    assert lsh.true_match_recall >= MIN_ANN_TM_RECALL, (
        f"lsh top-{TOP_K} true-match recall {lsh.true_match_recall:.3f} < "
        f"{MIN_ANN_TM_RECALL} vs dense"
    )
    assert ann.true_match_recall >= MIN_ANN_TM_RECALL, (
        f"ann_graph top-{TOP_K} true-match recall "
        f"{ann.true_match_recall:.3f} < {MIN_ANN_TM_RECALL} vs dense"
    )
    # generation never materialized the pair space: the collision stream
    # is the entire cost, and it stayed below the full n1 × n2 grid
    assert lsh.meta["lsh_collision_touches"] < dense.n_pairs * 2
    assert lsh.meta["lsh_distinct_pairs"] < dense.n_pairs

    # peak similarity-matrix bytes: blocked must undercut dense, and both
    # totals must be real (reported above for the record)
    assert 0 < attr.matrix_bytes < dense.matrix_bytes
    assert 0 < lsh.matrix_bytes < dense.matrix_bytes
    emit(
        "Blocking memory",
        f"dense cache {dense.matrix_bytes / 1e6:.2f} MB vs "
        f"attr_index {attr.matrix_bytes / 1e6:.2f} MB "
        f"({dense.matrix_bytes / attr.matrix_bytes:.1f}x smaller) vs "
        f"lsh {lsh.matrix_bytes / 1e6:.2f} MB",
    )

    # --- candidate-generation wall time: lsh vs the inverted index -------
    # Timed on freshly built graphs (shared extraction cache keeps the
    # rebuild cheap), best-of-N on both sides so one scheduler hiccup
    # cannot decide the gate.
    dataset = webmd_like(
        n_users=SCALING_USERS, seed=SCALING_SEED, min_posts_per_user=2
    ).dataset
    split = closed_world_split(dataset, aux_fraction=0.5, seed=SPLIT_SEED)
    extractor = FeatureExtractor(cache=ExtractionCache())
    g1 = UDAGraph(split.anonymized, extractor=extractor)
    g2 = UDAGraph(split.auxiliary, extractor=extractor)
    attr_gen_s = _best_of(lambda: attr_index_candidates(g1, g2))
    lsh_gen_s = _best_of(lambda: lsh_candidates(g1, g2))

    cores = _available_cores()
    record = {
        "corpus_users": SCALING_USERS,
        "corpus_seed": SCALING_SEED,
        "n_anonymized": result.n_anonymized,
        "n_auxiliary": result.n_auxiliary,
        "cores": cores,
        "top_k": result.top_k,
        "dense_pairs": dense.n_pairs,
        "dense_cache_bytes": dense.matrix_bytes,
        "policies": {
            row.policy: {
                "pair_fraction": round(row.pair_fraction, 4),
                "topk_recall": round(row.topk_recall, 4),
                "true_match_recall": round(row.true_match_recall, 4),
                "generation_s": round(row.generation_s, 4),
                "generation_users_per_s": (
                    round(result.n_anonymized / row.generation_s, 1)
                    if row.generation_s
                    else None
                ),
                "cache_bytes": row.matrix_bytes,
            }
            for row in result.rows
        },
        "attr_index_gen_s_best": round(attr_gen_s, 4),
        "lsh_gen_s_best": round(lsh_gen_s, 4),
        "lsh_vs_attr_index_speedup": round(attr_gen_s / lsh_gen_s, 2),
    }
    BENCH_JSON.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit(
        f"Blocking generation ({cores} core(s))",
        f"attr_index best {attr_gen_s * 1e3:.1f} ms vs lsh best "
        f"{lsh_gen_s * 1e3:.1f} ms "
        f"({attr_gen_s / lsh_gen_s:.2f}x)",
    )

    if cores >= TIMING_MIN_CORES:
        assert lsh_gen_s < attr_gen_s, (
            f"lsh candidate generation ({lsh_gen_s * 1e3:.1f} ms) did not "
            f"beat attr_index ({attr_gen_s * 1e3:.1f} ms) on {cores} cores"
        )
