"""Ablation — similarity-weight sweep (c1, c2, c3).

The paper fixes (0.05, 0.05, 0.9) arguing the sparse, disconnected graphs
make degree/distance weakly informative.  This ablation verifies that
choice: attribute-dominated weightings should beat degree/distance-dominated
ones on Top-K success.
"""

from repro.core import DeHealth, DeHealthConfig, SimilarityWeights
from repro.experiments import format_table
from repro.forum import closed_world_split
from repro.graph import UDAGraph
from repro.stylometry import FeatureExtractor

from benchmarks.conftest import emit

WEIGHTINGS = {
    "paper (.05,.05,.9)": SimilarityWeights(0.05, 0.05, 0.90),
    "uniform (1/3 each)": SimilarityWeights(1 / 3, 1 / 3, 1 / 3),
    "degree only": SimilarityWeights(1.0, 0.0, 0.0),
    "distance only": SimilarityWeights(0.0, 1.0, 0.0),
    "attribute only": SimilarityWeights(0.0, 0.0, 1.0),
}


def test_ablation_similarity_weights(benchmark, webmd_corpus):
    split = closed_world_split(webmd_corpus, aux_fraction=0.5, seed=8)
    extractor = FeatureExtractor()
    anon = UDAGraph(split.anonymized, extractor=extractor)
    aux = UDAGraph(split.auxiliary, extractor=extractor)

    def run():
        out = {}
        for label, weights in WEIGHTINGS.items():
            attack = DeHealth(DeHealthConfig(weights=weights, n_landmarks=50))
            attack.fit(anon, aux)
            res = attack.top_k_result(split.truth)
            out[label] = {k: res.success_rate(k) for k in (1, 10, 50)}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, vals[1], vals[10], vals[50]] for label, vals in results.items()
    ]
    emit(
        "Ablation: similarity weights (Top-K success)",
        format_table(["weighting", "top-1", "top-10", "top-50"], rows),
    )

    paper = results["paper (.05,.05,.9)"]
    # the paper's weighting beats pure degree and pure distance
    assert paper[10] >= results["degree only"][10]
    assert paper[10] >= results["distance only"][10]
    # and is near-equivalent to attribute-only (c3 dominates by design)
    assert abs(paper[10] - results["attribute only"][10]) <= 0.15
