"""Ablation — similarity-weight sweep (c1, c2, c3).

The paper fixes (0.05, 0.05, 0.9) arguing the sparse, disconnected graphs
make degree/distance weakly informative.  This ablation verifies that
choice: attribute-dominated weightings should beat degree/distance-dominated
ones on Top-K success.

Runs through :func:`repro.experiments.run_weights_ablation` — the executor
path — so all five weightings share one fitted session (one feature
extraction, one set of component similarity matrices).
"""

from repro.experiments import ABLATION_WEIGHTINGS, format_table, run_weights_ablation

from benchmarks.conftest import emit


def test_ablation_similarity_weights(benchmark, webmd_corpus):
    def run():
        reports = run_weights_ablation(
            webmd_corpus, split_seed=8, n_landmarks=50, ks=(1, 10, 50)
        )
        return {
            label: {k: report.success_rate(k) for k in (1, 10, 50)}
            for label, report in reports.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, vals[1], vals[10], vals[50]] for label, vals in results.items()
    ]
    emit(
        "Ablation: similarity weights (Top-K success)",
        format_table(["weighting", "top-1", "top-10", "top-50"], rows),
    )

    assert set(results) == set(ABLATION_WEIGHTINGS)
    paper = results["paper (.05,.05,.9)"]
    # the paper's weighting beats pure degree and pure distance
    assert paper[10] >= results["degree only"][10]
    assert paper[10] >= results["distance only"][10]
    # and is near-equivalent to attribute-only (c3 dominates by design)
    assert abs(paper[10] - results["attribute only"][10]) <= 0.15
