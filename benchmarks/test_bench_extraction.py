"""Extraction fast path — the phase-0 throughput bench.

Three claims on one generated corpus, gated:

* **algorithmic** — the rewritten single-core extractor (single char/word
  count passes, memoized word shapes and lexicon/suffix POS stages) beats
  a frozen copy of the pre-fast-path implementation by >= 1.5x, while
  producing byte-identical rows (the reference doubles as the oracle);
* **memoized** — a warm :class:`~repro.stylometry.ExtractionCache` pass
  over the same posts runs >= 5x faster than the cold pass;
* **parallel** — with >= 4 cores, a 4-worker process pool beats the cold
  serial pass by >= 2x (skipped on smaller machines, like the PR 2
  executor bench: this is a determinism-first, speedup-when-possible
  feature).

Measured numbers land in ``BENCH_extraction.json`` at the repo root —
the first entry of the perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from pathlib import Path

from repro.datagen import webmd_like
from repro.stylometry import ExtractionCache, FeatureExtractor
from repro.stylometry.features import MAX_WORD_LENGTH_BIN
from repro.text.metrics import vocabulary_richness
from repro.text.postag import POSTagger
from repro.text.tokenize import tokenize, word_shape

from benchmarks.conftest import emit

BENCH_USERS = 80
BENCH_SEED = 3

MIN_ALGORITHMIC_SPEEDUP = 1.5
MIN_MEMOIZED_SPEEDUP = 5.0
MIN_PARALLEL_SPEEDUP = 2.0
PARALLEL_MIN_CORES = 4
PARALLEL_WORKERS = 4

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_extraction.json"


def _reference_extract_sparse(fx: FeatureExtractor, tagger: POSTagger, text: str):
    """Frozen copy of the pre-fast-path ``extract_sparse`` hot loop.

    Taken verbatim from the extractor as it stood before this bench
    existed (per-category passes over the text, one ``text.count`` per
    tracked character, unmemoized tagging via the passed-in tagger) so the
    speedup is measured against the real prior implementation — and so
    the new path can be asserted byte-identical to it.
    """
    out: dict = {}
    if not text or not text.strip():
        return out

    tokens = tokenize(text)
    words = [t.text for t in tokens if t.kind == "word"]
    lower_words = [w.lower() for w in words]
    n_words = len(words)
    n_chars = len(text)

    off = fx._offsets

    base = off["length"]
    out[base] = float(n_chars)
    paragraphs = [p for p in text.split("\n\n") if p.strip()]
    out[base + 1] = float(max(len(paragraphs), 1))
    if n_words:
        out[base + 2] = sum(len(w) for w in words) / n_words

    if n_words:
        base = off["word_length"]
        counts = Counter(min(len(w), MAX_WORD_LENGTH_BIN) for w in words)
        for length, c in counts.items():
            out[base + length - 1] = c / n_words

    base = off["vocabulary_richness"]
    for i, value in enumerate(vocabulary_richness(lower_words).values()):
        if value:
            out[base + i] = float(value)

    letters = [c for c in text if c.isalpha()]
    n_letters = len(letters)
    if n_letters:
        base = off["letter_freq"]
        counts = Counter(c.lower() for c in letters)
        for ch, c in counts.items():
            idx = ord(ch) - ord("a")
            if 0 <= idx < 26:
                out[base + idx] = c / n_letters
        n_upper = sum(1 for c in letters if c.isupper())
        if n_upper:
            out[off["uppercase_pct"]] = n_upper / n_letters

    base = off["digit_freq"]
    digit_counts = Counter(c for c in text if "0" <= c <= "9")
    for d, c in digit_counts.items():
        out[base + int(d)] = c / n_chars

    base = off["special_chars"]
    for ch, idx in fx._special_index.items():
        c = text.count(ch)
        if c:
            out[base + idx] = c / n_chars

    if n_words:
        base = off["word_shape"]
        shapes = [word_shape(w) for w in words]
        for s, c in Counter(shapes).items():
            out[base + fx._shape_index[s]] = c / n_words
        if len(shapes) > 1:
            bigram_counts = Counter(zip(shapes, shapes[1:]))
            for pair, c in bigram_counts.items():
                idx = fx._shape_bigram_index.get(pair)
                if idx is not None:
                    out[base + 5 + idx] = c / (len(shapes) - 1)

    base = off["punctuation"]
    for ch, idx in fx._punct_index.items():
        c = text.count(ch)
        if c:
            out[base + idx] = c / n_chars

    if n_words:
        base = off["function_words"]
        fw_counts = Counter(w for w in lower_words if w in fx._fw_index)
        for w, c in fw_counts.items():
            out[base + fx._fw_index[w]] = c / n_words

    tags = tagger.tag(tokens)
    n_tags = len(tags)
    if n_tags:
        base = off["pos_tags"]
        for t, c in Counter(tags).items():
            out[base + fx._tag_index[t]] = c / n_tags
        if n_tags > 1:
            base = off["pos_bigrams"]
            bigram_counts = Counter(zip(tags, tags[1:]))
            for (a, b), c in bigram_counts.items():
                idx = fx._tag_index[a] * fx._n_tags + fx._tag_index[b]
                out[base + idx] = c / (n_tags - 1)

    if n_words:
        base = off["misspellings"]
        ms_counts = Counter(w for w in lower_words if w in fx._misspell_index)
        for w, c in ms_counts.items():
            out[base + fx._misspell_index[w]] = c / n_words

    return out


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux fallback
        return os.cpu_count() or 1


def test_extraction_fast_path(benchmark):
    dataset = webmd_like(n_users=BENCH_USERS, seed=BENCH_SEED).dataset
    texts = [p.text for u in dataset.user_ids() for p in dataset.posts_of(u)]
    n_posts = len(texts)

    # --- reference (pre-fast-path) pass, also the byte-identity oracle.
    # Best-of-two timings on both sides keep the ratio gates robust
    # against one-off scheduler noise on shared CI machines.
    ref_fx = FeatureExtractor(tagger=POSTagger(memoize=False))
    ref_s = float("inf")
    for _ in range(2):
        ref_tagger = POSTagger(memoize=False)
        started = time.perf_counter()
        ref_rows = [
            _reference_extract_sparse(ref_fx, ref_tagger, text)
            for text in texts
        ]
        ref_s = min(ref_s, time.perf_counter() - started)

    # --- cold pass through the fast path (fresh extractor + empty cache)
    def cold_pass():
        extractor = FeatureExtractor(cache=ExtractionCache())
        return extractor, extractor.extract_rows(texts, copy=False)

    extractor, cold_rows = benchmark.pedantic(cold_pass, rounds=2, iterations=1)
    cold_s = benchmark.stats.stats.min

    assert cold_rows == ref_rows, (
        "fast-path extraction is not byte-identical to the reference"
    )

    # --- warm pass: every post served from the cache
    started = time.perf_counter()
    warm_rows = extractor.extract_rows(texts, copy=False)
    warm_s = time.perf_counter() - started
    assert warm_rows == ref_rows
    counters = extractor.cache.counters()
    assert counters["builds"] == len(set(texts))

    # --- optional parallel pass (multi-core machines only)
    cores = _available_cores()
    parallel_s = None
    if cores >= PARALLEL_MIN_CORES:
        fresh = FeatureExtractor()
        started = time.perf_counter()
        parallel_rows = fresh.extract_rows(texts, workers=PARALLEL_WORKERS)
        parallel_s = time.perf_counter() - started
        assert parallel_rows == ref_rows

    record = {
        "corpus_users": BENCH_USERS,
        "corpus_seed": BENCH_SEED,
        "n_posts": n_posts,
        "cores": cores,
        "ref_posts_per_sec": round(n_posts / ref_s, 1),
        "cold_posts_per_sec": round(n_posts / cold_s, 1),
        "warm_posts_per_sec": round(n_posts / warm_s, 1),
        "parallel_posts_per_sec": (
            round(n_posts / parallel_s, 1) if parallel_s else None
        ),
        "algorithmic_speedup": round(ref_s / cold_s, 2),
        "memoized_speedup": round(cold_s / warm_s, 1),
        "parallel_speedup": (
            round(cold_s / parallel_s, 2) if parallel_s else None
        ),
        "cache_entries": counters["entries"],
        "cache_bytes": counters["bytes"],
    }
    BENCH_JSON.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit(
        f"Extraction fast path ({n_posts} posts, {cores} core(s))",
        json.dumps(record, indent=2, sort_keys=True),
    )

    assert ref_s / cold_s >= MIN_ALGORITHMIC_SPEEDUP, (
        f"single-core fast path only {ref_s / cold_s:.2f}x over the "
        f"reference extractor (gate: {MIN_ALGORITHMIC_SPEEDUP}x)"
    )
    assert cold_s / warm_s >= MIN_MEMOIZED_SPEEDUP, (
        f"memoized-warm pass only {cold_s / warm_s:.2f}x over cold "
        f"(gate: {MIN_MEMOIZED_SPEEDUP}x)"
    )
    if parallel_s is not None:
        assert cold_s / parallel_s >= MIN_PARALLEL_SPEEDUP, (
            f"{PARALLEL_WORKERS}-worker extraction only "
            f"{cold_s / parallel_s:.2f}x over serial on {cores} cores "
            f"(gate: {MIN_PARALLEL_SPEEDUP}x)"
        )
