"""Shared fixtures for the benchmark harness.

Corpora are session-scoped: every figure's bench reuses the same calibrated
WebMD-like / HealthBoards-like corpora.  Sizes are scaled down from the
paper's 89K/388K users (see DESIGN.md §2 for why ratios, not absolutes, are
the reproduction target); the WebMD:HB size ordering is preserved.
"""

from __future__ import annotations

import pytest

from repro.experiments import topk_corpus

#: Bench corpus sizes (users).  The HB corpus is kept larger than WebMD so
#: the paper's "bigger corpus = harder Top-K DA" ordering is measurable.
WEBMD_USERS = 500
HB_USERS = 1200


@pytest.fixture(scope="session")
def webmd_corpus():
    return topk_corpus("webmd", n_users=WEBMD_USERS, seed=0)


@pytest.fixture(scope="session")
def hb_corpus():
    return topk_corpus("healthboards", n_users=HB_USERS, seed=1)


@pytest.fixture(scope="session")
def webmd_open_corpus():
    """WebMD-shaped corpus where every user has >= 2 posts.

    Open-world overlap users need posts on both sides; with the raw Zipf
    tail (most users have one post) the achievable overlap caps below 70%,
    which would make the Fig-5 ratio sweep degenerate.
    """
    from repro.datagen import webmd_like

    return webmd_like(
        n_users=WEBMD_USERS, seed=2, min_posts_per_user=2
    ).dataset


def emit(title: str, text: str) -> None:
    """Print a bench report block (shown via pytest's -rP / captured out)."""
    print(f"\n=== {title} ===")
    print(text)
