"""Table I — the stylometric feature inventory.

Every fixed-size category must match the paper's count exactly; the POS
blocks are bounded by the paper's "< 2300" / "< 2300²".
"""

from repro.experiments import format_table, run_table1

from benchmarks.conftest import emit


def test_table1_feature_inventory(benchmark):
    rows_dict = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = [
        [category, cell["paper"], cell["ours"]]
        for category, cell in rows_dict.items()
    ]
    emit(
        "Table I: stylometric features",
        format_table(["category", "paper", "ours"], rows),
    )

    for category, cell in rows_dict.items():
        if cell["paper"] is not None:
            assert cell["ours"] == cell["paper"], category
    assert rows_dict["pos_tags"]["ours"] < 2300
    assert rows_dict["pos_bigrams"]["ours"] < 2300**2
