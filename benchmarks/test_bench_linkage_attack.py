"""Section VI — the linkage attack proof of concept.

Paper yields on 89,393 WebMD users: 1,676 NameLink hits to HealthBoards
(1.9%); 2,805 filtered avatar targets with 347 linked (12.4%); 137 users in
both linked populations (far above the ~2% independence rate); >33.4% of
avatar-linked users found on 2+ services; full PII recoverable for most.
"""

from repro.experiments import format_table
from repro.experiments.linkage_exp import run_linkage_experiment

from benchmarks.conftest import emit


def test_linkage_attack_campaign(benchmark):
    result = benchmark.pedantic(
        lambda: run_linkage_experiment(n_users=2000, seed=9),
        rounds=1,
        iterations=1,
    )
    report = result.report

    name_rate = report.n_name_linked / report.n_users
    rows = [
        ["NameLink rate", "1.9%", f"{name_rate:.1%}"],
        ["avatar targets / users", "3.1%", f"{report.n_avatar_targets / report.n_users:.1%}"],
        ["AvatarLink rate", "12.4%", f"{report.avatar_link_rate:.1%}"],
        ["overlap (both tools)", "137/347", str(len(report.overlap_ids))],
        ["multi-service fraction", ">=33.4%", f"{report.multi_service_fraction:.1%}"],
        ["NameLink precision", "manual", f"{report.name_precision:.2f}"],
        ["AvatarLink precision", "manual", f"{report.avatar_precision:.2f}"],
    ]
    emit("Section VI: linkage attack", format_table(["measure", "paper", "measured"], rows))
    emit("Section VI: PII recovered", "\n".join(report.summary_lines()))

    # shape: a meaningful fraction of filtered avatar targets is linkable
    assert 0.03 <= report.avatar_link_rate <= 0.40
    # shape: name linkage lands within an order of magnitude of 1.9%
    assert 0.005 <= name_rate <= 0.12
    # linkage against ground truth is precise (the paper validated manually)
    assert report.name_precision >= 0.9
    assert report.avatar_precision >= 0.9
    # the attack recovers PII for linked users
    assert report.revealed["full_name"] > 0
