"""Section IV — validation of the re-identifiability bounds.

No paper figure exists for this; we sweep the feature gap and check that
(i) every Theorem-1/3 bound sits at or below the measured success of the
argmax attacker and (ii) both grow monotonically with the gap, reaching the
a.a.s. regime of the corollaries.
"""

from repro.experiments import format_table, run_theory_validation

from benchmarks.conftest import emit

GAPS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def test_theory_bounds_vs_measured(benchmark):
    cells = benchmark.pedantic(
        lambda: run_theory_validation(gaps=GAPS, n1=150, n2=150, k=10, seed=7),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            c.gap,
            c.bound_pairwise,
            c.measured_exact,
            c.bound_topk,
            c.measured_topk,
            c.aas_holds,
        ]
        for c in cells
    ]
    emit(
        "Theory: bounds vs measured DA success",
        format_table(
            ["gap", "bound(T1)", "measured exact", "bound(T3)", "measured topK", "a.a.s."],
            rows,
        ),
    )

    for cell in cells:
        # lower bounds actually lower-bound the measurement
        assert cell.bound_pairwise <= cell.measured_exact + 0.05
        assert cell.bound_topk <= cell.measured_topk + 0.05
    # bounds are monotone in the gap and eventually vacuous -> tight
    bounds = [c.bound_pairwise for c in cells]
    assert bounds == sorted(bounds)
    assert cells[-1].aas_holds
    assert cells[-1].measured_exact == 1.0
