"""Fig 3 — closed-world Top-K DA CDFs.

Paper shapes: the CDF grows with K; WebMD (smaller corpus) beats HB at the
same K; the 90%-auxiliary split (sparsest anonymized graph) is the hardest
for WebMD's anonymized side.
"""

import numpy as np

from repro.experiments import format_table, run_fig3

from benchmarks.conftest import emit

KS = (1, 5, 10, 50, 100, 250, 500)


def test_fig3_topk_closed_world(benchmark, webmd_corpus, hb_corpus):
    def run():
        return {
            "webmd": run_fig3(dataset=webmd_corpus, ks=KS, seed=3),
            "healthboards": run_fig3(dataset=hb_corpus, ks=KS, seed=3),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for corpus, curve_list in curves.items():
        for curve in curve_list:
            rows.append([curve.label, curve.n_anonymized]
                        + [round(float(v), 3) for v in curve.cdf])
    emit(
        "Fig 3: closed-world Top-K DA CDF",
        format_table(
            ["split", "n_anon"] + [f"K={k}" for k in KS], rows
        ),
    )

    for curve_list in curves.values():
        for curve in curve_list:
            assert (np.diff(curve.cdf) >= -1e-9).all()  # grows with K

    # WebMD easier than HB at the same K (smaller candidate space)
    webmd_50 = curves["webmd"][0]
    hb_50 = curves["healthboards"][0]
    assert webmd_50.at(100) >= hb_50.at(100) - 0.05

    # Top-K reduces the DA space by orders of magnitude with high success:
    # a 100-candidate set out of ~500/1200 users captures most true mappings
    assert webmd_50.at(250) >= 0.7
