"""Ablation — Top-K candidate selection strategy and Algorithm-2 filtering.

Compares the paper's two selection schemes (direct vs bipartite matching)
and measures what the optional threshold-vector filter does to candidate
set sizes.
"""

from repro.core import DeHealth, DeHealthConfig
from repro.experiments import format_table
from repro.forum import closed_world_split
from repro.graph import UDAGraph
from repro.stylometry import FeatureExtractor

from benchmarks.conftest import emit


def _containment(candidates: dict, truth) -> float:
    hits = 0
    total = 0
    for anon_id, cand in candidates.items():
        target = truth.true_match(anon_id)
        if target is None:
            continue
        total += 1
        if cand is not None and target in cand:
            hits += 1
    return hits / max(total, 1)


def test_ablation_selection_and_filtering(benchmark, webmd_corpus):
    split = closed_world_split(webmd_corpus, aux_fraction=0.5, seed=10)
    extractor = FeatureExtractor()
    anon = UDAGraph(split.anonymized, extractor=extractor)
    aux = UDAGraph(split.auxiliary, extractor=extractor)

    def run():
        out = {}
        for selection in ("direct", "matching"):
            for filtering in (False, True):
                attack = DeHealth(
                    DeHealthConfig(
                        top_k=10,
                        selection=selection,
                        filtering=filtering,
                        n_landmarks=50,
                    )
                )
                attack.fit(anon, aux)
                candidates = attack.top_k_candidates()
                sizes = [len(c) for c in candidates.values() if c is not None]
                out[(selection, filtering)] = {
                    "containment": _containment(candidates, split.truth),
                    "mean_size": sum(sizes) / max(len(sizes), 1),
                    "bottoms": sum(1 for c in candidates.values() if c is None),
                }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [sel, filt, v["containment"], v["mean_size"], v["bottoms"]]
        for (sel, filt), v in results.items()
    ]
    emit(
        "Ablation: Top-10 selection strategy x filtering",
        format_table(
            ["selection", "filtered", "truth containment", "mean |Cu|", "⊥ users"],
            rows,
        ),
    )

    # filtering never grows candidate sets
    for selection in ("direct", "matching"):
        unfiltered = results[(selection, False)]
        filtered = results[(selection, True)]
        assert filtered["mean_size"] <= unfiltered["mean_size"] + 1e-9
    # both strategies capture a solid share of true mappings at K=10
    assert results[("direct", False)]["containment"] >= 0.25
    assert results[("matching", False)]["containment"] >= 0.2
