"""Parallel sharded sweep — the executor's speedup and determinism bench.

A 12-variant fig3-style matrix (4 closed-world splits × 3 top_k values) on
the bench corpus, run serially and with ``workers=4``.  Two claims:

* determinism — the merged reports are byte-identical (canonical JSON)
  between the serial and the sharded-parallel path, always;
* speedup — with ≥ 4 cores available, 4 workers finish the 4 fits at
  least 2× faster than the serial path.  On fewer cores the timing is
  still reported but the 2× bound is not asserted (there is nothing to
  parallelize onto).
"""

import os
import time

from repro.api import AttackRequest, Engine, canonical_report_json, plan_shards
from repro.experiments import format_table

from benchmarks.conftest import emit

AUX_FRACTIONS = (0.5, 0.6, 0.7, 0.8)
TOP_KS = (5, 10, 20)
SPEEDUP_WORKERS = 4
REQUIRED_SPEEDUP = 2.0


def _matrix() -> list:
    base = AttackRequest(
        corpus="bench",
        world="closed",
        split_seed=17,
        n_landmarks=20,
        refined=False,
        ks=(1, 5, 10, 20),
    )
    return [
        base.variant(aux_fraction=fraction, top_k=k)
        for fraction in AUX_FRACTIONS
        for k in TOP_KS
    ]


def _engine(webmd_corpus) -> Engine:
    engine = Engine()
    engine.register("bench", webmd_corpus)
    return engine


def test_parallel_sweep_speedup_and_determinism(benchmark, webmd_corpus):
    requests = _matrix()
    assert len(requests) == 12
    assert len(plan_shards(requests)) == len(AUX_FRACTIONS)

    def run():
        serial_engine = _engine(webmd_corpus)
        t0 = time.perf_counter()
        serial = serial_engine.sweep(requests)
        serial_s = time.perf_counter() - t0

        parallel_engine = _engine(webmd_corpus)
        t0 = time.perf_counter()
        parallel = parallel_engine.sweep(requests, parallel=SPEEDUP_WORKERS)
        parallel_s = time.perf_counter() - t0
        return serial, parallel, serial_s, parallel_s

    serial, parallel, serial_s, parallel_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    cpus = len(os.sched_getaffinity(0))
    speedup = serial_s / max(parallel_s, 1e-9)
    emit(
        "Parallel sharded sweep (12-variant fig3-style matrix, 4 shards)",
        format_table(
            ["path", "workers", "wall s", "speedup", "cores"],
            [
                ["serial", 1, round(serial_s, 2), 1.0, cpus],
                [
                    "sharded",
                    SPEEDUP_WORKERS,
                    round(parallel_s, 2),
                    round(speedup, 2),
                    cpus,
                ],
            ],
        ),
    )

    # determinism: merged reports byte-identical to the serial path,
    # in input order, whatever the completion order of the shards
    assert canonical_report_json(parallel) == canonical_report_json(serial)
    assert [r.request for r in parallel] == requests

    # speedup: only meaningful when the hardware can actually run the
    # four shard fits concurrently
    if cpus >= SPEEDUP_WORKERS:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"workers={SPEEDUP_WORKERS} gave {speedup:.2f}x on {cpus} cores, "
            f"expected >= {REQUIRED_SPEEDUP}x"
        )
    else:
        emit(
            "Parallel sweep note",
            f"only {cpus} core(s) available — {REQUIRED_SPEEDUP}x bound not "
            "asserted (determinism still verified)",
        )
