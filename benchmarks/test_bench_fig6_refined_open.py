"""Fig 6 — open-world refined DA accuracy and false-positive rate.

Paper shapes: De-Health (with mean-verification, r=0.25) beats Stylometry
on accuracy while slashing the FP rate — the baseline cannot reject, so
every non-overlapping user it maps is a false positive (paper: FP 52% for
Stylometry vs 4% for De-Health K=5 at 50%-SMO).
"""

from repro.experiments import format_table
from repro.experiments.open_world import run_fig6

from benchmarks.conftest import emit

RATIOS = (0.5, 0.7, 0.9)
K_VALUES = (5, 10)


def test_fig6_refined_open_world(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig6(
            overlap_ratios=RATIOS,
            classifiers=("knn", "smo"),
            k_values=K_VALUES,
            n_users=60,
            posts_per_user=20,
            seed=6,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for (ratio, classifier), cells in results.items():
        for cell in cells:
            label = "Stylometry" if cell.method == "stylometry" else f"De-Health K={cell.k}"
            rows.append(
                [
                    f"{int(ratio * 100)}%-{classifier}",
                    label,
                    cell.accuracy,
                    cell.false_positive_rate,
                ]
            )
    emit(
        "Fig 6: open-world refined DA",
        format_table(["setting", "method", "accuracy", "FP rate"], rows),
    )

    for (ratio, classifier), cells in results.items():
        baseline = cells[0]
        dehealth_cells = cells[1:]
        # the baseline cannot reject: it maps every no-truth user to someone
        assert baseline.false_positive_rate == 1.0
        # mean-verification slashes the FP rate (paper: 52% -> 4%);
        # at 90% overlap only ~6 no-mapping users exist, so the FP
        # denominator is tiny — assert the strong form where it is
        # statistically meaningful
        best_fp = min(c.false_positive_rate for c in dehealth_cells)
        assert best_fp <= baseline.false_positive_rate - 0.15, (ratio, classifier)
        if ratio <= 0.5:
            assert best_fp <= 0.6, (ratio, classifier)
        # and De-Health's accuracy stays competitive with the baseline
        # despite rejecting (paper: it wins outright; our synthetic baseline
        # is stronger — EXPERIMENTS.md records the deviation)
        best_acc = max(c.accuracy for c in dehealth_cells)
        assert best_acc >= baseline.accuracy - 0.25, (ratio, classifier)
