"""Extension — which Table-I features matter (paper §II-B future work).

Leave-one-category-out over the stylometric feature blocks, measuring the
Top-10 DA success drop when a category's attributes vanish from the UDA
graphs.  The paper defers this question to future work; the measured
ranking answers it for the synthetic substrate.
"""

from repro.experiments import format_table
from repro.experiments.feature_ablation import run_feature_ablation

from benchmarks.conftest import emit


def test_feature_category_ablation(benchmark, webmd_corpus):
    cells = benchmark.pedantic(
        lambda: run_feature_ablation(webmd_corpus, k=10, seed=12),
        rounds=1,
        iterations=1,
    )
    rows = [[c.removed, c.topk_success, c.drop_vs_full] for c in cells]
    emit(
        "Feature-category ablation (Top-10 success, leave-one-out)",
        format_table(["removed category", "top-10 success", "drop"], rows),
    )

    full = cells[0]
    assert full.removed == "(none)"
    # no single category is the whole signal: the attack survives every
    # single-category knockout at better than half its full performance
    for cell in cells[1:]:
        assert cell.topk_success >= 0.4 * full.topk_success, cell.removed
    # and the ranking is well-formed (sorted by drop, all drops bounded)
    drops = [c.drop_vs_full for c in cells[1:]]
    assert drops == sorted(drops, reverse=True)
