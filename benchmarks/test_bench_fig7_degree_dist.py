"""Fig 7 (Appendix B) — degree distribution of the correlation graphs.

Paper: the degree of most users in both graphs is low, and the graphs'
connectivity is weak.
"""

from repro.experiments import format_table, run_fig7

from benchmarks.conftest import emit


def test_fig7_degree_distribution(benchmark, webmd_corpus, hb_corpus):
    results = benchmark.pedantic(
        lambda: [run_fig7(webmd_corpus), run_fig7(hb_corpus)],
        rounds=1,
        iterations=1,
    )
    rows = []
    for res in results:
        rows.append([res.corpus, "mean degree", res.mean_degree])
        rows.append([res.corpus, "median degree", res.median_degree])
        rows.append([res.corpus, "components", res.n_components])
        for d in (5, 20, 100):
            rows.append([res.corpus, f"CDF at degree {d}", float(res.cdf[d])])
    emit(
        "Fig 7: degree distribution",
        format_table(["corpus", "statistic", "measured"], rows),
    )

    for res in results:
        # shape: low degrees dominate, graph disconnected
        assert res.median_degree <= 15
        assert res.n_components > 1
        assert float(res.cdf[100]) > 0.95
