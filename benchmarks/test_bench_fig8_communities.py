"""Fig 8 (Appendix B) — community structure of the WebMD graph.

Paper: at degree filters 0/11/21/31 the graph is never connected and splits
into roughly 10-100 communities.
"""

from repro.experiments import format_table, run_fig8

from benchmarks.conftest import emit


def test_fig8_community_structure(benchmark, webmd_corpus):
    summaries = benchmark.pedantic(
        lambda: run_fig8(webmd_corpus, thresholds=(0, 11, 21, 31)),
        rounds=1,
        iterations=1,
    )
    rows = [
        [s.degree_threshold, s.n_nodes, s.n_edges, s.n_components, s.n_communities]
        for s in summaries
    ]
    emit(
        "Fig 8: community structure (WebMD-like)",
        format_table(
            ["degree>=", "nodes", "edges", "components", "communities"], rows
        ),
    )

    base = summaries[0]
    # shape: never strongly connected; communities in the paper's 10-100 band
    assert not base.is_connected
    assert 5 <= base.n_communities <= 100
    # filtering monotonically shrinks the graph
    nodes = [s.n_nodes for s in summaries]
    assert nodes == sorted(nodes, reverse=True)
