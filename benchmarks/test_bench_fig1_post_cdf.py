"""Fig 1 — CDF of users vs number of posts.

Paper: 87.3% of WebMD users and 75.4% of HealthBoards users have fewer than
5 posts; mean posts/user 5.66 (WebMD) and 12.06 (HB).
"""

from repro.experiments import format_table, run_fig1

from benchmarks.conftest import emit

PAPER = {
    "webmd": {"under5": 0.873, "mean": 5.66},
    "healthboards": {"under5": 0.754, "mean": 12.06},
}


def test_fig1_post_cdf(benchmark, webmd_corpus, hb_corpus):
    results = benchmark.pedantic(
        lambda: [run_fig1(webmd_corpus), run_fig1(hb_corpus)],
        rounds=1,
        iterations=1,
    )
    rows = []
    for res in results:
        paper = PAPER[res.corpus]
        rows.append(
            [res.corpus, "frac users <5 posts", paper["under5"], res.fraction_under_5]
        )
        rows.append(
            [res.corpus, "mean posts/user", paper["mean"], res.mean_posts_per_user]
        )
    emit(
        "Fig 1: posts-per-user CDF",
        format_table(["corpus", "statistic", "paper", "measured"], rows),
    )

    webmd, hb = results
    # shape: both corpora dominated by low-post users; HB has heavier tail
    assert webmd.fraction_under_5 > 0.8
    assert hb.fraction_under_5 < webmd.fraction_under_5
    assert hb.mean_posts_per_user > webmd.mean_posts_per_user
    # CDFs are monotone and reach 1 at the tail point
    assert webmd.cdf[-1] >= 0.99
