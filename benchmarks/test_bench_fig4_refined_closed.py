"""Fig 4 — closed-world refined DA accuracy.

Paper shapes: De-Health beats the no-Top-K Stylometry baseline; smaller K
does at least as well as larger K when training data are scarce (the Top-K
phase dominates); the paper's headline: SMO-20 De-Health(K=5) = 70% vs
Stylometry = 8%.

Deviation recorded in EXPERIMENTS.md: our synthetic authors stay more
separable at 50 classes than real WebMD authors, so the Stylometry baseline
lands higher than 8% — the orderings, not the gap magnitude, are the
reproduction target.
"""

from repro.experiments import format_table
from repro.experiments.closed_world import run_fig4

from benchmarks.conftest import emit

K_VALUES = (5, 10, 20)


def test_fig4_refined_closed_world(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig4(
            n_users=50,
            posts_settings=(20, 40),
            classifiers=("knn", "smo"),
            k_values=K_VALUES,
            seed=4,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for (classifier, train_posts), cells in results.items():
        for cell in cells:
            label = "Stylometry" if cell.method == "stylometry" else f"De-Health K={cell.k}"
            rows.append(
                [f"{classifier}-{train_posts}", label, cell.accuracy]
            )
    emit(
        "Fig 4: refined DA accuracy (closed world)",
        format_table(["setting", "method", "accuracy"], rows),
    )

    for (classifier, train_posts), cells in results.items():
        baseline = cells[0]
        dehealth = {c.k: c for c in cells[1:]}
        best_dh = max(c.accuracy for c in cells[1:])
        # shape: De-Health's best K beats the Stylometry baseline
        assert best_dh >= baseline.accuracy - 0.02, (classifier, train_posts)
        # shape: small K at least as good as the largest K (scarce data)
        assert dehealth[min(K_VALUES)].accuracy >= dehealth[max(K_VALUES)].accuracy - 0.1
        # well above the 1/50 random baseline
        assert best_dh > 5 * (1.0 / 50.0)
