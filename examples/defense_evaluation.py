#!/usr/bin/env python3
"""Evaluating anonymization defenses against De-Health (§VII future work).

The paper leaves "developing proper anonymization techniques for
large-scale online health data" as an open problem.  This example runs the
defenses this library implements — Anonymouth-style text obfuscation and
correlation-graph scrambling — against the full attack and prints the
privacy/utility trade-off.

Run:  python examples/defense_evaluation.py
"""

from repro import webmd_like
from repro.defense import evaluate_defense, obfuscate_dataset, scramble_threads
from repro.experiments import format_table

SEED = 23


def main() -> None:
    corpus = webmd_like(n_users=200, seed=SEED).dataset
    print(f"corpus: {corpus}\n")

    defenses = {
        "no defense": lambda ds: ds,
        "obfuscation (50% of posts)": lambda ds: obfuscate_dataset(
            ds, strength=0.5, seed=SEED
        ),
        "obfuscation (all posts)": lambda ds: obfuscate_dataset(
            ds, strength=1.0, seed=SEED
        ),
        "thread scrambling": lambda ds: scramble_threads(ds, prob=1.0, seed=SEED),
        "both": lambda ds: scramble_threads(
            obfuscate_dataset(ds, strength=1.0, seed=SEED), prob=1.0, seed=SEED
        ),
    }

    rows = []
    for name, fn in defenses.items():
        report = evaluate_defense(corpus, fn, defense_name=name, k=10, seed=SEED + 1)
        rows.append(
            [
                name,
                f"{report.topk_success_after:.2f}",
                f"{report.accuracy_after:.2f}",
                f"{report.content_preservation:.2f}",
            ]
        )
    print(
        format_table(
            ["defense", "top-10 success", "refined accuracy", "content kept"],
            rows,
            title="privacy / utility trade-off (lower attack numbers = better privacy)",
        )
    )
    print(
        "\nfinding: the attack's similarity is attribute-dominated, so text"
        "\nobfuscation is the effective lever; graph scrambling alone barely"
        "\nmoves it — defenses must scrub the writing style itself."
    )


if __name__ == "__main__":
    main()
