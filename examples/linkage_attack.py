#!/usr/bin/env python3
"""The Section-VI linkage attack: from forum pseudonyms to real people.

Generates a WebMD-shaped forum, grows a synthetic Internet around its users
(sister health service, four social networks, avatar uploads, username
reuse), then runs NameLink + AvatarLink and reports what PII falls out —
the reproduction of the paper's 347-of-2805 proof-of-concept.

Run:  python examples/linkage_attack.py
"""

from repro.experiments import run_linkage_experiment
from repro.linkage import MarkovUsernameModel

SEED = 11


def main() -> None:
    result = run_linkage_experiment(n_users=1000, seed=SEED)
    report = result.report

    print("linkage attack campaign")
    print("=" * 50)
    for line in report.summary_lines():
        print(" ", line)

    print("\npaper comparison:")
    print(f"  avatar link rate: ours {report.avatar_link_rate:.1%} "
          f"vs paper 12.4%")
    print(f"  multi-service:    ours {report.multi_service_fraction:.1%} "
          f"vs paper >=33.4%")

    # peek at a few high-entropy usernames — the ones NameLink trusts
    linked = list(report.name_links.items())[:5]
    if linked:
        print("\nsample name-linked users (highest entropy first):")
        for user_id, hits in linked:
            hit = hits[0]
            print(
                f"  {hit.username!r} ({hit.entropy_bits:.1f} bits) -> "
                f"{hit.account.service}:{hit.account.username!r}"
            )

    # what an adversary learns about one linked person
    all_linked = set(report.name_links) | set(report.avatar_links)
    if all_linked:
        print("\nexample privacy compromise (synthetic person):")
        example_id = sorted(all_linked)[0]
        # resolve through the world's ground truth the way Whitepages would
        print(f"  forum user: {example_id}")


if __name__ == "__main__":
    main()
