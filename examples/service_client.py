#!/usr/bin/env python3
"""Drive the JSON service end to end, in process (no sockets needed).

Builds the WSGI app over a fresh engine and walks the full flow a remote
client would: health check → corpus generation → single attack → parameter
sweep → engine stats.  The same payloads work over HTTP against
``repro-dehealth serve``::

    repro-dehealth serve --port 8321 &
    curl -s -X POST localhost:8321/generate -d '{"users": 150, "name": "demo"}'
    curl -s -X POST localhost:8321/attack -d '{"corpus": "demo", "top_k": 5}'

Run:  python examples/service_client.py
"""

from repro.service import call_app, create_app


def main() -> None:
    app = create_app()

    # 1. Liveness.
    health = call_app(app, "GET", "/healthz")
    print(f"GET /healthz -> {health.status} {health.json}")

    # 2. Generate and register a corpus server-side.
    generated = call_app(
        app,
        "POST",
        "/generate",
        {"preset": "webmd", "users": 150, "seed": 7, "name": "demo"},
    )
    print(f"POST /generate -> {generated.status} {generated.json}")

    # 3. One attack: closed world, K=5, KNN refined phase.
    attack = call_app(
        app,
        "POST",
        "/attack",
        {
            "corpus": "demo",
            "top_k": 5,
            "n_landmarks": 10,
            "classifier": "knn",
            "ks": [1, 5, 10],
        },
    )
    report = attack.json
    print(f"POST /attack -> {attack.status}")
    for k, rate in sorted(report["success_rates"].items(), key=lambda kv: int(kv[0])):
        print(f"  top-{k} success: {rate:.1%}")
    print(f"  refined DA accuracy: {report['refined_accuracy']:.1%}")

    # 4. A sweep over K x classifier: the grid expands to 6 requests, and
    #    because corpus + split agree they all share one fitted session.
    sweep = call_app(
        app,
        "POST",
        "/sweep",
        {
            "base": {"corpus": "demo", "n_landmarks": 10, "ks": [1, 5]},
            "grid": {"top_k": [3, 5, 10], "classifier": ["knn", "centroid"]},
        },
    )
    print(f"POST /sweep -> {sweep.status} ({sweep.json['count']} variants)")
    for rep in sweep.json["reports"]:
        req = rep["request"]
        print(
            f"  K={req['top_k']:>2} {req['classifier']:<8} "
            f"accuracy={rep['refined_accuracy']:.1%} "
            f"reused_fit={rep['reused_fit']}"
        )

    # 5. The engine's cache counters prove the sweep reused one fit.
    stats = call_app(app, "GET", "/stats").json
    session = stats["sessions"][0]
    print(
        f"GET /stats -> {stats['attacks']} attacks over "
        f"{len(stats['sessions'])} session(s); "
        f"graph builds: {session['graph_builds']}, "
        f"combined-similarity builds: "
        f"{session['similarity_builds'].get('combined', 0)}"
    )


if __name__ == "__main__":
    main()
