#!/usr/bin/env python3
"""Applying the Section-IV theory to a real attack run.

Estimates the framework's (λ, λ̄, θ, δ) parameters from De-Health's actual
similarity matrix on a synthetic corpus, evaluates the Theorem 1/3 bounds,
and compares them against the measured DA success — then sweeps synthetic
feature gaps to show where the a.a.s. corollary conditions kick in.

Run:  python examples/theory_bounds.py
"""

from repro import DeHealth, DeHealthConfig, closed_world_split, webmd_like
from repro.experiments import format_table, run_theory_validation
from repro.theory import (
    estimate_gap_from_similarity,
    measure_da_success,
    pairwise_reidentification_bound,
    topk_reidentification_bound,
)

SEED = 13


def main() -> None:
    # --- part 1: the theory applied to an actual De-Health run
    corpus = webmd_like(n_users=200, seed=SEED).dataset
    split = closed_world_split(corpus, aux_fraction=0.5, seed=SEED + 1)
    attack = DeHealth(DeHealthConfig(n_landmarks=20))
    attack.fit(split.anonymized, split.auxiliary)

    S = attack.similarity_matrix()
    anon_ids = attack.anonymized.users
    aux_ids = attack.auxiliary.users
    gap = estimate_gap_from_similarity(S, anon_ids, aux_ids, split.truth.mapping)
    measured = measure_da_success(
        S, anon_ids, aux_ids, split.truth.mapping, ks=[10]
    )

    print("estimated framework parameters from the attack's similarity:")
    print(f"  λ  (correct-pair mean):   {gap.lam_correct:.4f}")
    print(f"  λ̄  (incorrect-pair mean): {gap.lam_incorrect:.4f}")
    print(f"  gap |λ−λ̄|:                {gap.gap:.4f}")
    print(f"  δ  (max range):           {gap.delta:.4f}")
    print()
    print(f"Theorem 1 bound: {pairwise_reidentification_bound(gap):.3f}")
    print(f"Theorem 3 bound (K=10, n2={len(aux_ids)}): "
          f"{topk_reidentification_bound(gap, n2=len(aux_ids), k=10):.3f}")
    print(f"measured exact success:  {measured['exact']:.3f}")
    print(f"measured top-10 success: {measured['topk'][10]:.3f}")
    print()
    print("note: on real attack similarities the ranges are wide, so the")
    print("Chernoff bounds are loose — exactly the 'generic versus loose'")
    print("trade-off the paper's Discussion section describes.")

    # --- part 2: the controlled sweep where the bounds bite
    cells = run_theory_validation(gaps=(0.5, 1, 2, 4, 8, 16), seed=SEED)
    rows = [
        [c.gap, c.bound_pairwise, c.measured_exact, c.bound_topk,
         c.measured_topk, c.aas_holds]
        for c in cells
    ]
    print()
    print(
        format_table(
            ["gap", "T1 bound", "exact", "T3 bound", "top-K", "a.a.s."],
            rows,
            title="bound-vs-measured sweep (theory-friendly noise)",
        )
    )


if __name__ == "__main__":
    main()
