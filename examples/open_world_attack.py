#!/usr/bin/env python3
"""Open-world de-anonymization with verification (the Fig 6 scenario).

Builds two datasets whose user populations only partially overlap, then
compares De-Health with mean-verification against the traditional
Stylometry baseline on both accuracy and false-positive rate.  The baseline
cannot say ⊥, so every non-overlapping user it maps is a false positive;
De-Health's mean-verification scheme rejects low-evidence mappings.

Run:  python examples/open_world_attack.py
"""

from repro import DeHealth, DeHealthConfig, StylometryBaseline, UDAGraph
from repro.experiments import refined_open_split
from repro.stylometry import FeatureExtractor

SEED = 3
OVERLAP = 0.5  # half the anonymized users have no auxiliary counterpart


def main() -> None:
    split = refined_open_split(
        overlap_ratio=OVERLAP, n_users=60, posts_per_user=20, seed=SEED
    )
    truth = split.truth
    print(f"auxiliary:  {split.auxiliary}")
    print(f"anonymized: {split.anonymized}")
    print(
        f"overlapping users: {len(truth.overlapping_ids)}, "
        f"without true mapping: {len(truth.non_overlapping_ids)}"
    )

    extractor = FeatureExtractor()

    # --- baseline: one classifier over everyone, no rejection option
    baseline = StylometryBaseline(classifier="knn")
    base_result = baseline.deanonymize(
        UDAGraph(split.anonymized, extractor=extractor),
        UDAGraph(split.auxiliary, extractor=extractor),
    )
    print("\nStylometry baseline:")
    print(f"  accuracy:            {base_result.accuracy(truth):.1%}")
    print(f"  false-positive rate: {base_result.false_positive_rate(truth):.1%}")

    # --- De-Health with mean-verification; the paper's r=0.25 on its score
    # scale maps to ~0.03 on ours after floor correction (DESIGN.md §3)
    attack = DeHealth(
        DeHealthConfig(
            top_k=5,
            n_landmarks=5,
            classifier="knn",
            verification="mean",
            verification_r=0.03,
        )
    )
    attack.fit(split.anonymized, split.auxiliary, extractor=extractor)
    result = attack.deanonymize()
    print("\nDe-Health (K=5, mean-verification r=0.03 floor-corrected):")
    print(f"  accuracy:            {result.accuracy(truth):.1%}")
    print(f"  false-positive rate: {result.false_positive_rate(truth):.1%}")
    print(f"  rejected as ⊥:       {result.rejection_rate():.1%}")


if __name__ == "__main__":
    main()
