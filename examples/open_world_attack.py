#!/usr/bin/env python3
"""Open-world de-anonymization with verification (the Fig 6 scenario).

Builds two datasets whose user populations only partially overlap, then
compares De-Health with mean-verification against the traditional
Stylometry baseline on both accuracy and false-positive rate.  The baseline
cannot say ⊥, so every non-overlapping user it maps is a false positive;
De-Health's mean-verification scheme rejects low-evidence mappings.

The De-Health variants run through the session-based API
(:class:`repro.api.AttackSession`): both requests share one feature
extraction and one similarity computation, as the cache stats printed at
the end show.

Run:  python examples/open_world_attack.py
"""

from repro import StylometryBaseline
from repro.api import AttackRequest, AttackSession
from repro.experiments import refined_open_split

SEED = 3
OVERLAP = 0.5  # half the anonymized users have no auxiliary counterpart


def main() -> None:
    split = refined_open_split(
        overlap_ratio=OVERLAP, n_users=60, posts_per_user=20, seed=SEED
    )
    truth = split.truth
    print(f"auxiliary:  {split.auxiliary}")
    print(f"anonymized: {split.anonymized}")
    print(
        f"overlapping users: {len(truth.overlapping_ids)}, "
        f"without true mapping: {len(truth.non_overlapping_ids)}"
    )

    session = AttackSession(split)

    # --- baseline: one classifier over everyone, no rejection option
    baseline = StylometryBaseline(classifier="knn")
    base_result = baseline.deanonymize(*session.graphs)
    print("\nStylometry baseline:")
    print(f"  accuracy:            {base_result.accuracy(truth):.1%}")
    print(f"  false-positive rate: {base_result.false_positive_rate(truth):.1%}")

    # --- De-Health, with and without verification: one request protocol,
    # one shared fit.  The paper's r=0.25 on its score scale maps to ~0.03
    # on ours after floor correction (DESIGN.md §3).
    base = AttackRequest(
        world="open",
        overlap_ratio=OVERLAP,
        split_seed=SEED + 3,  # refined_open_split's actual split seed
        top_k=5,
        n_landmarks=5,
        classifier="knn",
    )
    unverified, verified = session.sweep(
        [base, base.variant(verification="mean", verification_r=0.03)]
    )

    print("\nDe-Health (K=5, no verification):")
    print(f"  accuracy:            {unverified.refined_accuracy:.1%}")
    print(f"  false-positive rate: {unverified.false_positive_rate:.1%}")

    print("\nDe-Health (K=5, mean-verification r=0.03 floor-corrected):")
    print(f"  accuracy:            {verified.refined_accuracy:.1%}")
    print(f"  false-positive rate: {verified.false_positive_rate:.1%}")
    print(f"  rejected as ⊥:       {verified.rejection_rate:.1%}")

    stats = session.stats()
    print(
        f"\nsession cache: {stats['graph_builds']} graph build(s), "
        f"{stats['similarity_builds'].get('combined', 0)} combined-similarity "
        f"computation(s) across {stats['runs']} attack runs"
    )


if __name__ == "__main__":
    main()
