#!/usr/bin/env python3
"""Quickstart: generate a health-forum corpus and de-anonymize it.

Walks the full De-Health pipeline end to end on a small synthetic corpus:
corpus generation, closed-world splitting, the Top-K phase, and the refined
classification phase — printing the measurements the paper reports.

Run:  python examples/quickstart.py
"""

from repro import DeHealth, DeHealthConfig, closed_world_split, webmd_like

SEED = 7


def main() -> None:
    # 1. A WebMD-shaped corpus: heavy-tailed posting, per-user styles.
    generated = webmd_like(n_users=250, seed=SEED)
    corpus = generated.dataset
    print(f"corpus: {corpus}")
    print(f"mean posts/user: {corpus.mean_posts_per_user():.2f}")

    # 2. Closed-world split: 50% of each user's posts become the auxiliary
    #    data, the rest are anonymized under random pseudonyms.
    split = closed_world_split(corpus, aux_fraction=0.5, seed=SEED + 1)
    print(f"auxiliary:  {split.auxiliary}")
    print(f"anonymized: {split.anonymized}")

    # 3. Fit De-Health: builds both UDA graphs and the structural
    #    similarity matrix (degree + landmark-distance + attribute terms).
    attack = DeHealth(DeHealthConfig(top_k=10, n_landmarks=20, classifier="knn"))
    attack.fit(split.anonymized, split.auxiliary)

    # 4. Phase 1 — Top-K DA: how often does the true mapping land in the
    #    candidate set?  (This is what Fig 3 plots.)
    topk = attack.top_k_result(split.truth)
    print("\nTop-K DA success (closed world):")
    for k in (1, 5, 10, 25, 50):
        print(f"  K={k:>3}: {topk.success_rate(k):.1%}")

    # 5. Phase 2 — refined DA: classify each anonymized user into its
    #    candidate set and score against ground truth.
    result = attack.deanonymize()
    print(f"\nrefined DA accuracy: {result.accuracy(split.truth):.1%}")
    print(f"users de-anonymized: {result.n_correct(split.truth)} correct "
          f"of {len(result.predictions)} decided")


if __name__ == "__main__":
    main()
