#!/usr/bin/env python3
"""Reproducing the paper's corpus statistics (Fig 1, Fig 2, Fig 7, Fig 8).

Generates both calibrated presets and prints every statistic the paper
reports about its WebMD and HealthBoards crawls, side by side with the
paper's numbers.

Run:  python examples/corpus_statistics.py
"""

from repro import healthboards_like, webmd_like
from repro.experiments import format_table, run_fig1, run_fig2, run_fig7, run_fig8

SEED = 17


def main() -> None:
    webmd = webmd_like(n_users=400, seed=SEED).dataset
    hb = healthboards_like(n_users=900, seed=SEED + 1).dataset

    rows = []
    for corpus, paper_under5, paper_mean_posts, paper_len in (
        (webmd, 0.873, 5.66, 127.59),
        (hb, 0.754, 12.06, 147.24),
    ):
        fig1 = run_fig1(corpus)
        fig2 = run_fig2(corpus)
        rows.append([corpus.name, "users <5 posts", f"{paper_under5:.1%}",
                     f"{fig1.fraction_under_5:.1%}"])
        rows.append([corpus.name, "mean posts/user", paper_mean_posts,
                     round(fig1.mean_posts_per_user, 2)])
        rows.append([corpus.name, "mean post words", paper_len,
                     round(fig2.mean_words, 2)])
    print(format_table(["corpus", "statistic", "paper", "ours"], rows,
                       title="Fig 1 / Fig 2: corpus calibration"))

    print()
    fig7 = run_fig7(webmd)
    print(f"Fig 7 (webmd-like): mean degree {fig7.mean_degree:.2f}, "
          f"median {fig7.median_degree:.0f}, components {fig7.n_components}")

    print()
    summaries = run_fig8(webmd, thresholds=(0, 11, 21, 31))
    rows = [
        [s.degree_threshold, s.n_nodes, s.n_components, s.n_communities,
         s.is_connected]
        for s in summaries
    ]
    print(format_table(
        ["degree>=", "nodes", "components", "communities", "connected"],
        rows,
        title="Fig 8: community structure (paper: 10-100 communities, never connected)",
    ))


if __name__ == "__main__":
    main()
